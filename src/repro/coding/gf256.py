"""Arithmetic over the finite field GF(2^8).

The field is realised as polynomials over GF(2) modulo the AES polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B). Multiplication and division go through
discrete log/antilog tables built once at import time from the generator
``0x03``, which is primitive for this modulus.

Three interfaces are provided:

* scalar helpers (:func:`gf_mul`, :func:`gf_div`, :func:`gf_inv`,
  :func:`gf_pow`) operating on Python ints in ``range(256)``;
* vectorised helpers (:func:`gf_mul_bytes`, :func:`gf_addmul_bytes`)
  operating on ``numpy`` ``uint8`` arrays;
* the batch engine (:func:`gf_matmul`), a full GF(2^8) matrix product
  backed by a precomputed 256 x 256 multiplication table (64 KB), which
  turns whole-codeword and batched encodes/decodes into a handful of
  table gathers. This is the hot path under every coding scheme; the
  actual kernel is pluggable via :mod:`repro.coding.backends`
  (``numpy-nibble`` default, ``numpy-table`` reference, optional
  ``numba``), all byte-identical.

Addition in GF(2^8) is XOR; no helper is needed beyond ``^`` /
``np.bitwise_xor``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

#: The field modulus: x^8 + x^4 + x^3 + x + 1.
MODULUS = 0x11B

#: Generator used to build the log/antilog tables (primitive for 0x11B).
GENERATOR = 0x03

#: Field order.
ORDER = 256


def _mul_no_table(a: int, b: int) -> int:
    """Russian-peasant multiplication in GF(2^8), used only to seed tables."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= MODULUS
        b >>= 1
    return result


def _build_tables() -> tuple[list[int], list[int]]:
    """Build antilog (exp) and log tables for the field.

    ``exp[i] = GENERATOR ** i`` for ``i`` in ``range(255)``, extended to 510
    entries so sums/differences of logs never need an explicit ``% 255``.
    ``log[exp[i]] = i``; ``log[0]`` is a sentinel (callers guard zero).
    """
    exp = [0] * 510
    log = [0] * 256
    value = 1
    for exponent in range(255):
        exp[exponent] = value
        log[value] = exponent
        value = _mul_no_table(value, GENERATOR)
    if value != 1:
        raise AssertionError("generator 0x03 must have order 255")
    for exponent in range(255, 510):
        exp[exponent] = exp[exponent - 255]
    return exp, log


_EXP, _LOG = _build_tables()

#: Numpy copies of the tables for the vectorised helpers.
_EXP_NP = np.array(_EXP, dtype=np.uint8)
_LOG_NP = np.array(_LOG, dtype=np.int32)


def _build_mul_table() -> np.ndarray:
    """Build the full 256 x 256 multiplication table ``T[a, b] = a * b``.

    64 KB of uint8; row/column 0 stay zero. One gather in this table
    replaces the log-add-antilog dance (two gathers, an int32 add, and a
    zero mask) per multiplied element, and is what :func:`gf_matmul` rides.
    """
    table = np.zeros((ORDER, ORDER), dtype=np.uint8)
    logs = _LOG_NP[1:]  # log of 1..255
    table[1:, 1:] = _EXP_NP[logs[:, None] + logs[None, :]]
    return table


#: Full product table: ``_MUL_TABLE[a, b] == gf_mul(a, b)``.
_MUL_TABLE = _build_mul_table()

#: Default column-tile width for :func:`gf_matmul`. The kernel's working set
#: per inner step is ~17 bytes/column (8-byte packed accumulator + 8-byte
#: gather scratch + 1 source byte), so 16 Ki columns keeps the streaming set
#: near 272 KiB — inside L2 on every target we run on. Without tiling, a
#: batch-stacked operand (batch x shard bytes columns) falls out of L2 around
#: batch 16-32 and throughput drops ~30% (see ROADMAP's perf trajectory).
TILE_COLUMNS = 1 << 14


def _require_uint8(array: np.ndarray, name: str) -> np.ndarray:
    """Validate a GF(2^8) operand, returning it as an ndarray view.

    Accepts read-only and non-contiguous arrays (all consumers gather from
    tables and never write into their inputs). Rejects non-arrays and
    non-``uint8`` dtypes with :class:`ParameterError` — silently accepting a
    wider dtype would index outside the 256-entry tables or wrap values.
    """
    if not isinstance(array, np.ndarray):
        raise ParameterError(
            f"{name} must be a numpy array, got {type(array).__name__}"
        )
    if array.dtype != np.uint8:
        raise ParameterError(f"{name} must have dtype uint8, got {array.dtype}")
    return array


def _check_scalar(scalar: int) -> None:
    if not 0 <= scalar < ORDER:
        raise ParameterError(f"GF(2^8) scalar {scalar} outside range(256)")


def gf_add(a: int, b: int) -> int:
    """Return ``a + b`` in GF(2^8) (which is XOR)."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Return ``a * b`` in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_pow(a: int, exponent: int) -> int:
    """Return ``a ** exponent`` in GF(2^8) for ``exponent >= 0``."""
    if exponent < 0:
        raise ParameterError("negative exponent; use gf_inv then gf_pow")
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return _EXP[(_LOG[a] * exponent) % 255]


def gf_inv(a: int) -> int:
    """Return the multiplicative inverse of ``a`` in GF(2^8).

    Raises :class:`ZeroDivisionError` for ``a == 0``.
    """
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return _EXP[255 - _LOG[a]]


def gf_div(a: int, b: int) -> int:
    """Return ``a / b`` in GF(2^8). Raises ``ZeroDivisionError`` if b == 0."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return _EXP[_LOG[a] - _LOG[b] + 255]


def gf_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Return ``scalar * data`` element-wise over GF(2^8).

    ``data`` must be a ``uint8`` array; read-only and non-contiguous views
    (for example ``np.frombuffer`` results or strided slices) are accepted,
    and a fresh C-contiguous array is always returned. Anything other than a
    ``uint8`` ndarray raises :class:`ParameterError`.
    """
    data = _require_uint8(data, "data")
    _check_scalar(scalar)
    if scalar == 0:
        return np.zeros(data.shape, dtype=np.uint8)
    if scalar == 1:
        return np.array(data, dtype=np.uint8)
    # Single gather in the scalar's table row; never writes into `data`.
    return _MUL_TABLE[scalar][data]


def gf_addmul_bytes(accumulator: np.ndarray, scalar: int, data: np.ndarray) -> None:
    """In-place ``accumulator ^= scalar * data`` over GF(2^8)."""
    accumulator = _require_uint8(accumulator, "accumulator")
    data = _require_uint8(data, "data")
    _check_scalar(scalar)
    if scalar == 0:
        return
    if scalar == 1:
        np.bitwise_xor(accumulator, data, out=accumulator)
        return
    np.bitwise_xor(accumulator, _MUL_TABLE[scalar][data], out=accumulator)


def gf_matmul(
    a: np.ndarray, b: np.ndarray, *, tile_columns: int | None = None
) -> np.ndarray:
    """Return the matrix product ``a @ b`` over GF(2^8).

    ``a`` is ``(m, k)`` and ``b`` is ``(k, w)``, both ``uint8``; the result
    is a fresh ``(m, w)`` ``uint8`` array. With ``m`` = generator rows and
    ``w`` = shard bytes (times the batch size), one call encodes a whole
    codeword (or a whole batch of codewords).

    This is a validated dispatch boundary, not the kernel: dtype, shape,
    and tile checks happen exactly once here, then the product is computed
    by the active :mod:`repro.coding.backends` kernel (``numpy-nibble`` by
    default; ``numpy-table`` is the reference; ``numba`` registers when
    importable — all CI-asserted byte-identical, so the choice is purely
    an execution knob). Kernels therefore run no per-tile revalidation.

    Wide products are processed in column tiles of ``tile_columns``
    (default :data:`TILE_COLUMNS`) so each kernel's packed accumulator and
    gather scratch stay resident in L2 even when ``w`` is a whole batch of
    stacked codewords. Any positive ``tile_columns`` produces identical
    output — the parameter exists for tests and tuning.

    Inputs may be read-only or non-contiguous. Shape or dtype mismatches
    (or a non-positive ``tile_columns``) raise :class:`ParameterError`.
    """
    from repro.coding import backends

    a = _require_uint8(a, "a")
    b = _require_uint8(b, "b")
    if a.ndim != 2 or b.ndim != 2:
        raise ParameterError(
            f"gf_matmul operands must be 2-D, got {a.ndim}-D and {b.ndim}-D"
        )
    if a.shape[1] != b.shape[0]:
        raise ParameterError(
            f"shape mismatch: {a.shape[0]}x{a.shape[1]} @ "
            f"{b.shape[0]}x{b.shape[1]}"
        )
    tile = TILE_COLUMNS if tile_columns is None else tile_columns
    if tile < 1:
        raise ParameterError(f"tile_columns must be positive, got {tile}")
    rows = a.shape[0]
    width = b.shape[1]
    if width == 0 or rows == 0:
        return np.zeros((rows, width), dtype=np.uint8)
    return backends.get_backend().matmul(a, b, tile)


def gf_poly_eval(coefficients: list[int], x: int) -> int:
    """Evaluate a polynomial (lowest-degree coefficient first) at ``x``.

    Horner's rule over GF(2^8).
    """
    result = 0
    for coefficient in reversed(coefficients):
        result = gf_mul(result, x) ^ coefficient
    return result
