"""Dense linear algebra over GF(2^8).

Matrices are plain lists of row lists of ints in ``range(256)`` — convenient
to construct, inspect, and row-reduce. Products (:func:`mat_mul`,
:func:`mat_vec`) convert to ``uint8`` arrays and run on
:func:`~repro.coding.gf256.gf_matmul`, the table-gather batch engine; use
:func:`to_array` / :func:`from_array` to cross the boundary yourself when a
caller keeps matrices hot (the Reed-Solomon codec caches its generator and
decode inverses as arrays and skips the conversion entirely).

Elimination-style routines (:func:`mat_inv`, :func:`rank`,
:func:`null_space_vector`) stay scalar: they run on k x k matrices with
k < 256 where pivot search dominates, not arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.coding.gf256 import gf_div, gf_inv, gf_matmul, gf_mul, gf_pow
from repro.errors import ParameterError

Matrix = list[list[int]]


def to_array(matrix: Matrix) -> np.ndarray:
    """Return ``matrix`` as a 2-D ``uint8`` array for :func:`gf_matmul`."""
    if not matrix:
        raise ParameterError("cannot convert an empty matrix")
    cols = len(matrix[0])
    if any(len(row) != cols for row in matrix):
        raise ParameterError("ragged matrix rows")
    return np.array(matrix, dtype=np.uint8)


def from_array(array: np.ndarray) -> Matrix:
    """Return a 2-D ``uint8`` array as a plain list-of-lists matrix."""
    if array.ndim != 2:
        raise ParameterError(f"expected a 2-D array, got {array.ndim}-D")
    return array.tolist()


def identity(size: int) -> Matrix:
    """Return the ``size`` x ``size`` identity matrix."""
    return [[1 if row == col else 0 for col in range(size)] for row in range(size)]


def zeros(rows: int, cols: int) -> Matrix:
    """Return a ``rows`` x ``cols`` all-zero matrix."""
    return [[0] * cols for _ in range(rows)]


def vandermonde(rows: int, cols: int) -> Matrix:
    """Return the ``rows`` x ``cols`` Vandermonde matrix ``V[r][c] = r^c``.

    Row evaluation points are ``0, 1, ..., rows - 1``; any ``cols`` rows are
    linearly independent provided ``rows <= 256``.
    """
    if rows > 256:
        raise ParameterError("at most 256 distinct evaluation points in GF(2^8)")
    return [[gf_pow(point, power) for power in range(cols)] for point in range(rows)]


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    """Return the matrix product ``a @ b`` over GF(2^8)."""
    if not a or not b:
        raise ParameterError("empty matrix operand")
    return from_array(gf_matmul(to_array(a), to_array(b)))


def mat_vec(a: Matrix, vector: list[int]) -> list[int]:
    """Return ``a @ vector`` over GF(2^8)."""
    if a and len(a[0]) != len(vector):
        raise ParameterError("shape mismatch in mat_vec")
    if not a:
        return []
    column = np.array(vector, dtype=np.uint8).reshape(-1, 1)
    return [row[0] for row in gf_matmul(to_array(a), column).tolist()]


def mat_inv(matrix: Matrix) -> Matrix:
    """Return the inverse of a square matrix over GF(2^8).

    Gauss-Jordan elimination with partial "pivoting" (any nonzero pivot works
    in a field; we pick the first). Raises :class:`ParameterError` if the
    matrix is singular.
    """
    size = len(matrix)
    if any(len(row) != size for row in matrix):
        raise ParameterError("mat_inv requires a square matrix")
    # Augment [M | I] and reduce.
    augmented = [list(row) + [1 if i == j else 0 for j in range(size)]
                 for i, row in enumerate(matrix)]
    for col in range(size):
        pivot_row = next(
            (r for r in range(col, size) if augmented[r][col] != 0), None
        )
        if pivot_row is None:
            raise ParameterError("matrix is singular over GF(2^8)")
        augmented[col], augmented[pivot_row] = augmented[pivot_row], augmented[col]
        pivot = augmented[col][col]
        pivot_inv = gf_inv(pivot)
        augmented[col] = [gf_mul(pivot_inv, value) for value in augmented[col]]
        for row in range(size):
            if row == col or augmented[row][col] == 0:
                continue
            factor = augmented[row][col]
            augmented[row] = [
                value ^ gf_mul(factor, pivot_value)
                for value, pivot_value in zip(augmented[row], augmented[col])
            ]
    return [row[size:] for row in augmented]


def rank(matrix: Matrix) -> int:
    """Return the rank of ``matrix`` over GF(2^8)."""
    if not matrix:
        return 0
    work = [list(row) for row in matrix]
    rows, cols = len(work), len(work[0])
    rank_count = 0
    pivot_col = 0
    for pivot_col in range(cols):
        pivot_row = next(
            (r for r in range(rank_count, rows) if work[r][pivot_col] != 0), None
        )
        if pivot_row is None:
            continue
        work[rank_count], work[pivot_row] = work[pivot_row], work[rank_count]
        pivot = work[rank_count][pivot_col]
        work[rank_count] = [gf_div(v, pivot) for v in work[rank_count]]
        for row in range(rows):
            if row == rank_count or work[row][pivot_col] == 0:
                continue
            factor = work[row][pivot_col]
            work[row] = [
                v ^ gf_mul(factor, p) for v, p in zip(work[row], work[rank_count])
            ]
        rank_count += 1
        if rank_count == rows:
            break
    return rank_count


def null_space_vector(matrix: Matrix, cols: int) -> list[int] | None:
    """Return a nonzero vector ``x`` with ``matrix @ x == 0``, or ``None``.

    ``matrix`` may be empty (zero rows), in which case any unit vector is in
    the null space. ``cols`` gives the vector length (needed when ``matrix``
    has no rows).
    """
    if cols == 0:
        return None
    if not matrix:
        return [1] + [0] * (cols - 1)
    if any(len(row) != cols for row in matrix):
        raise ParameterError("inconsistent column count")
    # Reduce to RREF, tracking pivot columns.
    work = [list(row) for row in matrix]
    rows = len(work)
    pivot_cols: list[int] = []
    current_row = 0
    for col in range(cols):
        pivot_row = next(
            (r for r in range(current_row, rows) if work[r][col] != 0), None
        )
        if pivot_row is None:
            continue
        work[current_row], work[pivot_row] = work[pivot_row], work[current_row]
        pivot = work[current_row][col]
        work[current_row] = [gf_div(v, pivot) for v in work[current_row]]
        for row in range(rows):
            if row == current_row or work[row][col] == 0:
                continue
            factor = work[row][col]
            work[row] = [
                v ^ gf_mul(factor, p) for v, p in zip(work[row], work[current_row])
            ]
        pivot_cols.append(col)
        current_row += 1
        if current_row == rows:
            break
    free_cols = [c for c in range(cols) if c not in pivot_cols]
    if not free_cols:
        return None
    # Back-substitute with the first free variable set to 1.
    free = free_cols[0]
    solution = [0] * cols
    solution[free] = 1
    for row_index, pivot_col in enumerate(pivot_cols):
        # pivot value is 1 in RREF; x[pivot] = sum over free columns.
        solution[pivot_col] = work[row_index][free]  # -a == a in char. 2
    return solution
