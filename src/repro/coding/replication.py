"""Replication expressed as a (degenerate) coding scheme.

Every block number carries the full value: ``E(v, i) = v`` for all ``i``, and
a single block decodes. This is the ``k = 1`` point in the paper's parameter
space (Section 5 notes "when k = 1, we get full replication") and the storage
baseline the lower bound is measured against. Block numbers are unbounded
(replication is trivially rateless), but an ``n`` may be supplied to bound
them for quorum-system use.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.coding.scheme import CodingScheme
from repro.errors import DecodingError, ParameterError


class ReplicationCode(CodingScheme):
    """Full replication: every block is the value itself."""

    name = "replication"

    def __init__(self, data_size_bytes: int, n: int | None = None) -> None:
        super().__init__(data_size_bytes)
        if n is not None and n < 1:
            raise ParameterError("n must be >= 1 when bounded")
        self.n = n
        self.k = 1

    def _check_index(self, index: int) -> None:
        if index < 0:
            raise ParameterError("block index must be non-negative")
        if self.n is not None and index >= self.n:
            raise ParameterError(f"block index {index} outside [0, {self.n})")

    def encode_block(self, value: bytes, index: int) -> bytes:
        self.check_value(value)
        self._check_index(index)
        return value

    def encode_batch(
        self, values: Sequence[bytes], indices: Iterable[int]
    ) -> list[dict[int, bytes]]:
        """Replication's batch encode is free: every block is the value."""
        index_list = list(indices)
        for index in index_list:
            self._check_index(index)
        for value in values:
            self.check_value(value)
        return [dict.fromkeys(index_list, value) for value in values]

    def block_size_bits(self, index: int) -> int:
        self._check_index(index)
        return self.data_size_bits

    def min_blocks_to_decode(self) -> int:
        return 1

    def decode_batch(
        self, blocks_batch: Sequence[Mapping[int, bytes]]
    ) -> list[bytes | None]:
        return [self._decode_one(blocks) for blocks in blocks_batch]

    def _decode_one(self, blocks: Mapping[int, bytes]) -> bytes | None:
        if not blocks:
            return None
        payloads = set(blocks.values())
        if len(payloads) != 1:
            raise DecodingError("replicated blocks disagree; mixed-source decode")
        value = next(iter(payloads))
        if len(value) != self.data_size_bytes:
            raise DecodingError(
                f"replica is {len(value)} bytes, expected {self.data_size_bytes}"
            )
        return value

    def collision_delta(self, indices: Iterable[int]) -> bytes | None:
        """Replication never admits collisions on a non-empty index set.

        Any stored block pins the whole value (``size(i) = D`` for all
        ``i``), so Claim 1's premise ``sum size(i) < D`` holds only for the
        empty set — in which case any nonzero delta collides.
        """
        if set(indices):
            return None
        return b"\x01" + b"\x00" * (self.data_size_bytes - 1)
