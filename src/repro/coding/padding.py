"""Length-prefixed padding adapter: code values of awkward sizes.

The MDS schemes require the value length to be divisible by ``k``. Real
payloads rarely cooperate, so :class:`PaddedScheme` wraps any inner-scheme
factory with a standard length-prefix-and-pad transform:

* encode: prefix the value with its 4-byte big-endian length, zero-pad up
  to the next multiple of ``k``, feed the inner scheme;
* decode: decode with the inner scheme, read the prefix, strip the pad.

The adapter preserves symmetry (Definition 3): padded size depends only on
the configured logical size, never on the bytes. Storage accounting sees
the padded block sizes — honest, since that is what would be stored.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Mapping, Sequence
from typing import Callable

from repro.coding.scheme import CodingScheme
from repro.errors import DecodingError, ParameterError

_LENGTH_PREFIX = struct.Struct(">I")


def padded_size(logical_size: int, k: int) -> int:
    """Inner-scheme value size for a logical payload of ``logical_size``."""
    raw = logical_size + _LENGTH_PREFIX.size
    remainder = raw % k
    return raw if remainder == 0 else raw + (k - remainder)


class PaddedScheme(CodingScheme):
    """Wrap an inner k-of-n scheme to accept any value length."""

    name = "padded"

    def __init__(
        self,
        logical_size_bytes: int,
        k: int,
        inner_factory: Callable[[int], CodingScheme],
    ) -> None:
        """``inner_factory(padded_bytes)`` builds the inner scheme."""
        super().__init__(logical_size_bytes)
        if k < 1:
            raise ParameterError("k must be >= 1")
        self.k = k
        self._padded_bytes = padded_size(logical_size_bytes, k)
        self.inner = inner_factory(self._padded_bytes)
        self.name = f"padded-{self.inner.name}"

    # ------------------------------------------------------------ plumbing

    def _pad(self, value: bytes) -> bytes:
        self.check_value(value)
        prefixed = _LENGTH_PREFIX.pack(len(value)) + value
        return prefixed.ljust(self._padded_bytes, b"\x00")

    def _unpad(self, padded: bytes) -> bytes:
        (length,) = _LENGTH_PREFIX.unpack_from(padded)
        if length != self.data_size_bytes:
            raise DecodingError(
                f"decoded length prefix {length} != configured "
                f"{self.data_size_bytes}"
            )
        start = _LENGTH_PREFIX.size
        return padded[start:start + length]

    # --------------------------------------------------------------- codec

    def encode_block(self, value: bytes, index: int) -> bytes:
        # Direct path: pad once and ride the inner scheme's own fast path
        # (e.g. the RS systematic shard copy) instead of a batch-of-one.
        return self.inner.encode_block(self._pad(value), index)

    def block_size_bits(self, index: int) -> int:
        return self.inner.block_size_bits(index)

    def min_blocks_to_decode(self) -> int:
        return self.inner.min_blocks_to_decode()

    def encode_batch(
        self, values: Sequence[bytes], indices: Iterable[int]
    ) -> list[dict[int, bytes]]:
        """Pad the batch, then ride the inner scheme's vectorised pass."""
        return self.inner.encode_batch(
            [self._pad(value) for value in values], indices
        )

    def decode_batch(
        self, blocks_batch: Sequence[Mapping[int, bytes]]
    ) -> list[bytes | None]:
        return [
            None if padded is None else self._unpad(padded)
            for padded in self.inner.decode_batch(blocks_batch)
        ]

    def collision_delta(self, indices: Iterable[int]) -> bytes | None:
        """Collisions transfer only when the delta stays inside the
        logical region (prefix and pad bytes must not change)."""
        inner_delta = self.inner.collision_delta(indices)
        if inner_delta is None:
            return None
        prefix = _LENGTH_PREFIX.size
        logical_end = prefix + self.data_size_bytes
        if any(inner_delta[:prefix]) or any(inner_delta[logical_end:]):
            # The inner kernel vector touches prefix/pad bytes; flipping
            # them would leave the logical value domain. Report no usable
            # collision rather than a wrong one.
            return None
        return inner_delta[prefix:logical_end]
