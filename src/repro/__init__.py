"""Reproduction of *Space Bounds for Reliable Storage: Fundamental Limits of
Coding* (Spiegelman, Cassuto, Chockler, Keidar — PODC 2016).

The package builds the full system the paper reasons about:

* :mod:`repro.coding` — symmetric black-box coding schemes and oracles
  (Section 3.1): Reed-Solomon, XOR parity, replication, rateless.
* :mod:`repro.sim` — the asynchronous fault-prone shared-memory model
  (Section 2): base objects with atomic RMW, coroutine clients, pluggable
  (possibly adversarial) schedulers, crash injection.
* :mod:`repro.storage` — block-instance bookkeeping and the storage-cost
  meter (Definitions 2 and 6).
* :mod:`repro.registers` — four register emulations: the paper's adaptive
  algorithm (Section 5), the safe register (Appendix E), ABD-style
  replication, and a coded-only baseline exhibiting the O(cD) blow-up.
* :mod:`repro.lowerbound` — the Section 4 machinery: constructive Claim 1
  collisions and the freezing adversary Ad (Definition 7) realising the
  Omega(min(f, c) * D) bound of Theorem 1.
* :mod:`repro.spec` — consistency checkers (weak/strong regularity,
  atomicity, strong safety).
* :mod:`repro.workloads` — workload generation and the experiment runner.
* :mod:`repro.analysis` — table/series helpers, the regime-sweep engine
  (grids over register/f/k/c/D with literature overlay bounds), and the
  markdown report generator.

Quickstart::

    from repro import AdaptiveRegister, RegisterSetup, WorkloadSpec
    from repro import run_register_workload

    setup = RegisterSetup(f=2, k=2, data_size_bytes=64)
    spec = WorkloadSpec(writers=3, readers=2, reads_per_reader=2)
    result = run_register_workload(AdaptiveRegister, setup, spec)
    print(result.peak_storage_bits, result.completed_reads)
"""

from repro.coding import (
    CodingScheme,
    DecodeOracle,
    EncodeOracle,
    RatelessXorCode,
    ReedSolomonCode,
    ReplicationCode,
    XorParityCode,
)
from repro.lowerbound import (
    AdAdversary,
    LowerBoundOutcome,
    find_colliding_pair,
    run_lower_bound_experiment,
    run_replacement_experiment,
    verify_claim1,
)
from repro.msgnet import MsgABDSystem
from repro.registers import (
    ABDRegister,
    AdaptiveNoGCRegister,
    AdaptiveRegister,
    AtomicABDRegister,
    CASRegister,
    ChannelCodedRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    check_invariant1,
    replication_setup,
)
from repro.sim import (
    FailurePlan,
    FairScheduler,
    RandomScheduler,
    SequentialScheduler,
    Simulation,
)
from repro.spec import (
    History,
    analyze_liveness,
    check_linearizability,
    check_strong_regularity,
    check_strong_safety,
    check_weak_regularity,
)
from repro.storage import PeakTracker, StorageMeter
from repro.workloads import (
    WorkloadSpec,
    churn,
    fuzz_register,
    make_value,
    read_heavy,
    run_register_workload,
    staggered_writers,
)

__version__ = "1.0.0"

__all__ = [
    "ABDRegister",
    "AdAdversary",
    "AdaptiveNoGCRegister",
    "AdaptiveRegister",
    "AtomicABDRegister",
    "CASRegister",
    "ChannelCodedRegister",
    "CodedOnlyRegister",
    "CodingScheme",
    "DecodeOracle",
    "EncodeOracle",
    "FailurePlan",
    "FairScheduler",
    "History",
    "LowerBoundOutcome",
    "MsgABDSystem",
    "PeakTracker",
    "RandomScheduler",
    "RatelessXorCode",
    "ReedSolomonCode",
    "RegisterSetup",
    "ReplicationCode",
    "SafeCodedRegister",
    "SequentialScheduler",
    "Simulation",
    "StorageMeter",
    "WorkloadSpec",
    "XorParityCode",
    "analyze_liveness",
    "check_linearizability",
    "check_strong_regularity",
    "check_invariant1",
    "check_strong_safety",
    "check_weak_regularity",
    "churn",
    "find_colliding_pair",
    "fuzz_register",
    "make_value",
    "read_heavy",
    "replication_setup",
    "run_lower_bound_experiment",
    "run_register_workload",
    "run_replacement_experiment",
    "staggered_writers",
    "verify_claim1",
]
