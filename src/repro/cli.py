"""Command-line interface: run the paper's experiments from a shell.

The subcommands mirror the repository's headline experiments::

    python -m repro compare    --f 3 --k 3 --data-size 48 --max-c 10
    python -m repro lowerbound --f 3 --k 3 --data-size 48 --c 4
    python -m repro audit      --register adaptive --writers 3 --readers 2
    python -m repro claim1     --k 3 --n 7 --indices 0,4
    python -m repro sweep      --fs 1,2 --ks 2,4 --cs 1,2,4 --workers 4 \\
                               --checkpoint sweep.journal.jsonl --resume

Each prints an aligned table and exits non-zero if the corresponding
paper property failed to hold (useful in CI). ``sweep`` (and ``report``)
accept ``--workers`` to fan grid cells across a process pool — results
are byte-identical to a serial run — and ``sweep --checkpoint/--resume``
journal completed cells so an interrupted sweep continues where it
stopped.

The daemon family runs the ABD register as a *real* TCP service
(``n = 2f + 1`` replica server processes, see ``docs/SERVICE.md``)::

    python -m repro serve  --f 1 --data-size 16 --state-dir ./cluster
    python -m repro status --state-dir ./cluster
    python -m repro doctor --state-dir ./cluster
    python -m repro stop   --state-dir ./cluster

``serve`` exits 3 when the cluster is already running; ``stop`` and
``status`` exit 4 when it is not; ``status`` and ``doctor`` exit 5 when
the cluster is degraded-but-alive (quorum answers, redundancy reduced) —
distinct codes so scripts can tell "already in the state I wanted" and
"wounded" from real failures.

``keyspace`` drives the sharded multi-register keyspace (consistent-hash
ring, skewed per-key waves — see ``docs/KEYSPACE.md``) across skews and
registers, printing aggregate storage against the per-shard Theorem 1
floors and the per-skew coded-only/adaptive advantage ratios::

    python -m repro keyspace --keys 100000 --shards 64 \\
        --skews uniform,hotspot --registers coded-only,adaptive

``chaos`` runs a seeded fault plan (drops, delays, duplicates, reorders,
slowdowns, partitions, crash windows — see ``docs/FAULTS.md``) against
the simulated network and/or a real loopback cluster behind the TCP
fault proxy, checks the resulting histories with the usual consistency
checkers, and (with ``--transport both``) asserts that both transports
fired the identical fault schedule::

    python -m repro chaos --seed 7 --profile drop+delay --rate 0.3
    python -m repro chaos --seeds 0:5 --profile chaos --journal runs.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import format_table
from repro.lowerbound import run_lower_bound_experiment, verify_claim1
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    AtomicABDRegister,
    CASRegister,
    ChannelCodedRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.coding import ReedSolomonCode
from repro.sim import RandomScheduler
from repro.spec import (
    analyze_liveness,
    check_linearizability,
    check_strong_regularity,
    check_strong_safety,
)
from repro.workloads import WorkloadSpec, run_register_workload

REGISTERS = {
    "adaptive": AdaptiveRegister,
    "cas": CASRegister,
    "channel-coded": ChannelCodedRegister,
    "coded-only": CodedOnlyRegister,
    "safe": SafeCodedRegister,
    "abd": ABDRegister,
    "abd-atomic": AtomicABDRegister,
}


def _coded_setup(args: argparse.Namespace) -> RegisterSetup:
    return RegisterSetup(f=args.f, k=args.k, data_size_bytes=args.data_size)


def cmd_compare(args: argparse.Namespace) -> int:
    """Storage of ABD vs coded-only vs adaptive across concurrency."""
    coded = _coded_setup(args)
    abd = replication_setup(f=args.f, data_size_bytes=args.data_size)
    rows = []
    for c in range(1, args.max_c + 1):
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0,
                            seed=args.seed)
        row = [c]
        for register_cls, setup in (
            (ABDRegister, abd),
            (CodedOnlyRegister, coded),
            (AdaptiveRegister, coded),
        ):
            result = run_register_workload(register_cls, setup, spec)
            row.append(result.peak_bo_state_bits)
        rows.append(row)
    print(f"f={args.f} k={args.k} D={coded.data_size_bits} bits "
          f"(peak base-object storage)")
    print(format_table(["c", "abd", "coded-only", "adaptive"], rows))
    return 0


def cmd_lowerbound(args: argparse.Namespace) -> int:
    """Run the Theorem 1 adversary experiment."""
    setup = _coded_setup(args)
    register_cls = REGISTERS[args.register]
    outcome = run_lower_bound_experiment(
        register_cls, setup, concurrency=args.c,
        ell_bits=args.ell, seed=args.seed,
    )
    print(format_table(
        ["fired", "|F|", "|C+|", "storage(bits)", "lemma3 bound",
         "thm1 bound", "writes completed"],
        [[outcome.fired, outcome.frozen_count, outcome.c_plus_count,
          outcome.storage_bits, outcome.lemma3_bound_bits,
          outcome.theorem1_bound_bits, outcome.writes_completed]],
    ))
    ok = (
        outcome.fired != "none"
        and outcome.bound_satisfied
        and outcome.writes_completed == 0
    )
    print("theorem 1:", "HOLDS" if ok else "VIOLATED")
    return 0 if ok else 1


def cmd_audit(args: argparse.Namespace) -> int:
    """Run a workload and check the register's claimed semantics."""
    register_cls = REGISTERS[args.register]
    if args.register in ("abd", "abd-atomic"):
        setup = replication_setup(f=args.f, data_size_bytes=args.data_size)
    else:
        setup = _coded_setup(args)
    spec = WorkloadSpec(writers=args.writers, writes_per_writer=2,
                        readers=args.readers, reads_per_reader=2,
                        seed=args.seed)
    result = run_register_workload(
        register_cls, setup, spec, scheduler=RandomScheduler(args.seed)
    )
    history = result.history
    if args.register == "safe":
        check_name, report = "strong safety", check_strong_safety(history)
    elif args.register in ("abd-atomic", "cas"):
        check_name, report = "linearizability", check_linearizability(history)
    else:
        check_name, report = (
            "strong regularity", check_strong_regularity(history)
        )
    liveness = analyze_liveness(result.sim, result.run.quiescent)
    print(format_table(
        ["register", "writes", "reads", "peak storage(bits)", check_name,
         "liveness"],
        [[args.register, result.completed_writes, result.completed_reads,
          result.peak_bo_state_bits, "pass" if report.ok else "FAIL",
          liveness.verdict]],
    ))
    if not report.ok:
        for violation in getattr(report, "violations", []):
            print(f"  violation: {violation}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_claim1(args: argparse.Namespace) -> int:
    """Demonstrate Claim 1 on a concrete index set."""
    scheme = ReedSolomonCode(k=args.k, n=args.n,
                             data_size_bytes=args.data_size)
    indices = [int(x) for x in args.indices.split(",")] if args.indices else []
    report = verify_claim1(scheme, indices)
    print(format_table(
        ["indices", "stored bits", "D", "premise (<D)", "collision found",
         "collision valid"],
        [[",".join(map(str, report.indices)) or "-", report.stored_bits,
          report.data_bits, report.premise_holds, report.collision_found,
          report.collision_valid]],
    ))
    print("claim 1:", "HOLDS" if report.consistent_with_claim else "VIOLATED")
    return 0 if report.consistent_with_claim else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Fuzz a register against its consistency checker."""
    from repro.workloads import fuzz_register

    register_cls = REGISTERS[args.register]
    if args.register in ("abd", "abd-atomic"):
        setup = replication_setup(f=args.f, data_size_bytes=args.data_size)
    else:
        setup = _coded_setup(args)
    if args.register == "safe":
        checker = check_strong_safety
    elif args.register in ("abd-atomic", "cas"):
        checker = check_linearizability
    else:
        checker = check_strong_regularity
    result = fuzz_register(
        register_cls, setup, checker,
        runs=args.runs, crash_objects=args.crash_objects,
        base_seed=args.seed,
    )
    print(result.summary())
    return 0 if result.ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a regime-sweep grid (parallel and resumable)."""
    from repro.analysis import (
        Scenario,
        SweepGrid,
        crossover_shape_violations,
        run_sweep,
    )

    def ints(text: str) -> tuple[int, ...]:
        return tuple(int(part) for part in text.split(","))

    grid = SweepGrid.cartesian(
        registers=tuple(args.registers.split(",")),
        fs=ints(args.fs),
        ks=ints(args.ks),
        cs=ints(args.cs),
        data_sizes=ints(args.data_sizes),
        seed=args.seed,
        pad=args.pad,
    )
    scenarios = None
    if args.with_crashes:
        scenarios = (
            Scenario("uniform"),
            Scenario("churn+crash", pattern="churn", ops_per_client=2,
                     bo_crashes=1, client_crashes=1),
        )
    result = run_sweep(
        grid,
        scenarios=scenarios,
        workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    print(result.table())
    if args.output:
        path = result.save(args.output)
        print(f"JSON result: {path}")
    violations = crossover_shape_violations(result)
    for violation in violations:
        print(f"SHAPE VIOLATION: {violation}", file=sys.stderr)
    return 1 if violations else 0


def cmd_keyspace(args: argparse.Namespace) -> int:
    """Run a sharded-keyspace sweep across skews (and check its shapes)."""
    from repro.analysis import (
        keyspace_advantage_ratios,
        keyspace_grid,
        keyspace_shape_violations,
        run_keyspace_sweep,
    )

    def ints(text: str) -> tuple[int, ...]:
        return tuple(int(part) for part in text.split(","))

    cells = keyspace_grid(
        skews=tuple(args.skews.split(",")),
        registers=tuple(args.registers.split(",")),
        keys=ints(args.keys),
        shards=ints(args.shards),
        f=args.f,
        k=args.k,
        data_size_bytes=args.data_size,
        waves=args.waves,
        wave_size=args.wave_size,
        reads_per_wave=args.reads_per_wave,
        zipf_s=args.zipf_s,
        hot_keys=args.hot_keys,
        hot_weight=args.hot_weight,
        vnodes=args.vnodes,
        seed=args.seed,
    )
    result = run_keyspace_sweep(cells, workers=args.workers)
    print(result.table())
    for skew, ratio in keyspace_advantage_ratios(result).items():
        print(f"advantage ({skew}): coded-only/adaptive = {ratio:.2f}x")
    if args.output:
        path = result.save(args.output)
        print(f"JSON result: {path}")
    violations = keyspace_shape_violations(result)
    for violation in violations:
        print(f"SHAPE VIOLATION: {violation}", file=sys.stderr)
    return 1 if violations else 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run the headline experiments and emit a markdown report."""
    from repro.analysis.report import generate_report, report_ok

    report = generate_report(workers=args.workers)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0 if report_ok(report) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Start (or revive) a replica cluster in the state dir."""
    from repro.errors import AlreadyRunningError, DaemonError
    from repro.service import daemon

    try:
        if args.revive:
            revived = daemon.restart_dead(args.state_dir)
            if revived:
                print(f"revived {len(revived)} server(s): "
                      f"{', '.join(revived)}")
            else:
                print("all servers already running; nothing to revive")
            return daemon.EXIT_OK
        meta = daemon.start_cluster(
            args.state_dir, f=args.f, data_size_bytes=args.data_size,
            host=args.host, port_base=args.port_base,
        )
    except AlreadyRunningError as error:
        print(f"error: {error}", file=sys.stderr)
        return daemon.EXIT_ALREADY_RUNNING
    except DaemonError as error:
        print(f"error: {error}", file=sys.stderr)
        return daemon.EXIT_FAIL
    n = 2 * meta["f"] + 1
    print(f"started {n} servers (f={meta['f']}, "
          f"D={meta['data_size_bytes'] * 8} bits) in {args.state_dir}")
    return daemon.EXIT_OK


def cmd_status(args: argparse.Namespace) -> int:
    """Probe every replica and report the Definition-2 storage view."""
    from repro.errors import DaemonError, NotRunningError
    from repro.service import daemon

    try:
        meta, view = daemon.cluster_status(args.state_dir)
    except NotRunningError as error:
        print(f"error: {error}", file=sys.stderr)
        return daemon.EXIT_NOT_RUNNING
    except DaemonError as error:
        print(f"error: {error}", file=sys.stderr)
        return daemon.EXIT_FAIL
    import time as time_module

    now = time_module.time()
    rows = []
    for status in view.statuses:
        rows.append([
            status.name,
            status.pid if status.pid is not None else "-",
            status.port if status.port is not None else "-",
            "up" if status.alive else "DOWN",
            repr(status.ts) if status.ts is not None else "-",
            status.replica_bits,
            status.applied_count,
            f"{status.probe_attempts}x" if status.probe_attempts else "-",
            (f"{max(0, int(now - status.last_seen))}s ago"
             if status.last_seen is not None else "never"),
        ])
    print(format_table(
        ["server", "pid", "port", "state", "ts", "replica(bits)", "applied",
         "probes", "seen"],
        rows,
    ))
    floor = view.thm1_floor_bits()
    print(f"quorum: {view.alive_count}/{len(view.statuses)} up "
          f"(majority {view.majority})")
    print(f"storage (Definition 2, at rest): {view.server_storage_bits} bits"
          f" | thm1 floor (c=1): {floor} bits | "
          + ("OK" if view.meets_thm1_floor else "BELOW FLOOR"))
    from repro.coding import backends as coding_backends

    print(f"coding backend: {coding_backends.get_backend().name} "
          f"(available: {', '.join(coding_backends.available_backends())})")
    faults = daemon.fault_plan_summary(args.state_dir)
    if faults is not None:
        print(f"fault plan: {faults}")
    if not (view.quorum_available and view.meets_thm1_floor):
        return daemon.EXIT_FAIL
    if view.alive_count < len(view.statuses):
        print("state: DEGRADED (quorum intact, redundancy reduced)")
        return daemon.EXIT_DEGRADED
    return daemon.EXIT_OK


def cmd_stop(args: argparse.Namespace) -> int:
    """Gracefully stop a running cluster (SIGTERM drain)."""
    from repro.errors import DaemonError, NotRunningError
    from repro.service import daemon

    try:
        report = daemon.stop_cluster(args.state_dir, timeout=args.timeout)
    except NotRunningError as error:
        print(f"error: {error}", file=sys.stderr)
        return daemon.EXIT_NOT_RUNNING
    except DaemonError as error:
        print(f"error: {error}", file=sys.stderr)
        return daemon.EXIT_FAIL
    for name, pid, outcome in report:
        print(f"{name} (pid {pid}): {outcome}")
    forced = [name for name, _pid, outcome in report if outcome == "killed"]
    return daemon.EXIT_FAIL if forced else daemon.EXIT_OK


def cmd_doctor(args: argparse.Namespace) -> int:
    """Run the cluster health checks (processes, ports, journals, bound)."""
    from repro.service import daemon

    checks = daemon.run_doctor(args.state_dir)
    width = max(len(name) for name, _ok, _detail in checks)
    for name, ok, detail in checks:
        print(f"{'ok  ' if ok else 'FAIL'} {name:<{width}}  {detail}")
    code = daemon.doctor_exit_code(checks)
    verdict = {
        daemon.EXIT_OK: "healthy",
        daemon.EXIT_DEGRADED: "DEGRADED (quorum intact)",
    }.get(code, "UNHEALTHY")
    print("doctor:", verdict)
    return code


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault plan against the service and/or the simulator."""
    import json
    import tempfile
    from pathlib import Path

    from repro.errors import FaultPlanError
    from repro.faults import run_chaos_experiment, seeded_fault_plan
    from repro.service import daemon
    from repro.service.statedir import StateDir

    if args.seeds:
        low, _sep, high = args.seeds.partition(":")
        try:
            seeds = list(range(int(low), int(high)))
        except ValueError:
            print(f"error: --seeds wants LOW:HIGH, got {args.seeds!r}",
                  file=sys.stderr)
            return daemon.EXIT_FAIL
        if not seeds:
            print(f"error: --seeds {args.seeds!r} is an empty range",
                  file=sys.stderr)
            return daemon.EXIT_FAIL
    else:
        seeds = [args.seed]
    replicas = tuple(f"s{index}" for index in range(2 * args.f + 1))
    rows = []
    journal_entries = []
    all_ok = True
    for seed in seeds:
        try:
            plan = seeded_fault_plan(
                seed, replicas=replicas, f=args.f, profile=args.profile,
                rate=args.rate, horizon=args.horizon,
            )
        except FaultPlanError as error:
            print(f"error: {error}", file=sys.stderr)
            return daemon.EXIT_FAIL
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
            state_dir = args.state_dir or workdir
            if args.state_dir:
                state = StateDir(state_dir)
                state.root.mkdir(parents=True, exist_ok=True)
                plan.save(state.faults_path)
            report = run_chaos_experiment(
                plan, args.data_size, state_dir,
                transport=args.transport, writers=args.writers,
                readers=args.readers, ops=args.ops, tick_s=args.tick_s,
            )
        all_ok &= report.ok
        journal_entries.append(report.to_json())
        for transport_report in (report.sim, report.tcp):
            if transport_report is None:
                continue
            fired = transport_report.firing_counts
            link_fired = sum(
                count for kind, count in fired.items()
                if not kind.startswith("event:")
            )
            event_fired = sum(
                count for kind, count in fired.items()
                if kind.startswith("event:")
            )
            rows.append([
                seed,
                transport_report.transport,
                transport_report.ops,
                transport_report.failures,
                link_fired,
                event_fired,
                transport_report.window_drops,
                transport_report.resent_messages,
                "pass" if transport_report.linearizable else "FAIL",
                "pass" if transport_report.strongly_regular else "FAIL",
                "pass" if report.parity_ok else "FAIL",
            ])
    print(f"profile={args.profile} rate={args.rate} f={args.f} "
          f"D={args.data_size * 8} bits "
          f"({args.writers}w+{args.readers}r x {args.ops} ops)")
    print(format_table(
        ["seed", "transport", "ops", "failed", "link-faults", "events",
         "window-drops", "resent", "linearizable", "regular", "parity"],
        rows,
    ))
    if args.journal:
        path = Path(args.journal)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            for entry in journal_entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"journal: {path}")
    print("chaos:", "OK" if all_ok else "FAILED")
    return daemon.EXIT_OK if all_ok else daemon.EXIT_FAIL


def cmd_server(args: argparse.Namespace) -> int:
    """(internal) Run one replica server process in the foreground."""
    from repro.service.server import main as server_main

    return server_main([
        "--name", args.name, "--index", str(args.index),
        "--f", str(args.f), "--data-size", str(args.data_size),
        "--state-dir", args.state_dir, "--host", args.host,
        "--port", str(args.port),
        "--handle-delay-ms", str(args.handle_delay_ms),
    ])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiments from 'Space Bounds for Reliable Storage' "
                    "(PODC 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--f", type=int, default=2, help="crash tolerance")
        p.add_argument("--k", type=int, default=2, help="code dimension")
        p.add_argument("--data-size", type=int, default=16,
                       help="value size in bytes (D/8)")
        p.add_argument("--seed", type=int, default=0)

    p_compare = sub.add_parser("compare", help=cmd_compare.__doc__)
    common(p_compare)
    p_compare.add_argument("--max-c", type=int, default=6)
    p_compare.set_defaults(handler=cmd_compare)

    p_lb = sub.add_parser("lowerbound", help=cmd_lowerbound.__doc__)
    common(p_lb)
    p_lb.add_argument("--c", type=int, default=4, help="concurrent writes")
    p_lb.add_argument("--ell", type=int, default=None,
                      help="ell in bits (default D/2)")
    p_lb.add_argument("--register", choices=sorted(REGISTERS),
                      default="coded-only")
    p_lb.set_defaults(handler=cmd_lowerbound)

    p_audit = sub.add_parser("audit", help=cmd_audit.__doc__)
    common(p_audit)
    p_audit.add_argument("--register", choices=sorted(REGISTERS),
                         default="adaptive")
    p_audit.add_argument("--writers", type=int, default=3)
    p_audit.add_argument("--readers", type=int, default=2)
    p_audit.set_defaults(handler=cmd_audit)

    p_claim = sub.add_parser("claim1", help=cmd_claim1.__doc__)
    p_claim.add_argument("--k", type=int, default=3)
    p_claim.add_argument("--n", type=int, default=7)
    p_claim.add_argument("--data-size", type=int, default=24)
    p_claim.add_argument("--indices", type=str, default="0,4",
                         help="comma-separated block numbers ('' for none)")
    p_claim.set_defaults(handler=cmd_claim1)

    p_sweep = sub.add_parser("sweep", help=cmd_sweep.__doc__)
    p_sweep.add_argument("--registers", type=str,
                         default="abd,coded-only,adaptive",
                         help="comma-separated REGISTER_REGISTRY names")
    p_sweep.add_argument("--fs", type=str, default="1,2",
                         help="comma-separated crash budgets")
    p_sweep.add_argument("--ks", type=str, default="2",
                         help="comma-separated code dimensions")
    p_sweep.add_argument("--cs", type=str, default="1,2,4",
                         help="comma-separated concurrency levels")
    p_sweep.add_argument("--data-sizes", type=str, default="48",
                         help="comma-separated value sizes in bytes")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--pad", action="store_true",
                         help="route coded points through PaddedScheme "
                              "(any-size D axis)")
    p_sweep.add_argument("--with-crashes", action="store_true",
                         help="also sweep the churn-with-crashes scenario")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="process-pool size (1 = serial; results "
                              "byte-identical)")
    p_sweep.add_argument("--checkpoint", type=str, default=None,
                         help="JSONL journal path for checkpoint/resume")
    p_sweep.add_argument("--resume", action="store_true",
                         help="resume from an existing --checkpoint journal")
    p_sweep.add_argument("--output", type=str, default=None,
                         help="write the sweep-result JSON to this path")
    p_sweep.set_defaults(handler=cmd_sweep)

    p_keyspace = sub.add_parser("keyspace", help=cmd_keyspace.__doc__)
    p_keyspace.add_argument("--keys", type=str, default="100000",
                            help="comma-separated keyspace sizes")
    p_keyspace.add_argument("--shards", type=str, default="64",
                            help="comma-separated shard (register) counts")
    p_keyspace.add_argument("--skews", type=str, default="uniform,hotspot",
                            help="comma-separated key skews: uniform, "
                                 "zipfian, hotspot")
    p_keyspace.add_argument("--registers", type=str,
                            default="coded-only,adaptive",
                            help="comma-separated register names")
    p_keyspace.add_argument("--f", type=int, default=1,
                            help="crash tolerance per shard")
    p_keyspace.add_argument("--k", type=int, default=2,
                            help="code dimension per shard")
    p_keyspace.add_argument("--data-size", type=int, default=16,
                            help="value size in bytes (D/8)")
    p_keyspace.add_argument("--waves", type=int, default=4,
                            help="synchronous operation waves")
    p_keyspace.add_argument("--wave-size", type=int, default=128,
                            help="concurrent write clients per wave")
    p_keyspace.add_argument("--reads-per-wave", type=int, default=16,
                            help="concurrent reader clients per wave")
    p_keyspace.add_argument("--zipf-s", type=float, default=1.1,
                            help="zipfian exponent (skew=zipfian)")
    p_keyspace.add_argument("--hot-keys", type=int, default=8,
                            help="hot-set size (skew=hotspot)")
    p_keyspace.add_argument("--hot-weight", type=float, default=0.9,
                            help="traffic share of the hot set")
    p_keyspace.add_argument("--vnodes", type=int, default=64,
                            help="virtual nodes per shard on the hash ring")
    p_keyspace.add_argument("--seed", type=int, default=0)
    p_keyspace.add_argument("--workers", type=int, default=1,
                            help="process-pool size (results byte-identical)")
    p_keyspace.add_argument("--output", type=str, default=None,
                            help="write the keyspace-sweep JSON here")
    p_keyspace.set_defaults(handler=cmd_keyspace)

    p_report = sub.add_parser("report", help=cmd_report.__doc__)
    p_report.add_argument("--output", type=str, default=None,
                          help="write the markdown report to this path")
    p_report.add_argument("--workers", type=int, default=1,
                          help="process-pool size for the sweep sections")
    p_report.set_defaults(handler=cmd_report)

    p_fuzz = sub.add_parser("fuzz", help=cmd_fuzz.__doc__)
    common(p_fuzz)
    p_fuzz.add_argument("--register", choices=sorted(REGISTERS),
                        default="adaptive")
    p_fuzz.add_argument("--runs", type=int, default=25)
    p_fuzz.add_argument("--crash-objects", type=int, default=0)
    p_fuzz.set_defaults(handler=cmd_fuzz)

    p_serve = sub.add_parser("serve", help=cmd_serve.__doc__)
    p_serve.add_argument("--f", type=int, default=1, help="crash tolerance")
    p_serve.add_argument("--data-size", type=int, default=16,
                         help="value size in bytes (D/8)")
    p_serve.add_argument("--state-dir", type=str, required=True,
                         help="directory for pidfiles, ports, journals, logs")
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument("--port-base", type=int, default=0,
                         help="first port (server i gets base+i); "
                              "0 = ephemeral")
    p_serve.add_argument("--revive", action="store_true",
                         help="re-spawn dead servers of an existing cluster "
                              "(journal recovery) instead of starting fresh")
    p_serve.set_defaults(handler=cmd_serve)

    p_status = sub.add_parser("status", help=cmd_status.__doc__)
    p_status.add_argument("--state-dir", type=str, required=True)
    p_status.set_defaults(handler=cmd_status)

    p_stop = sub.add_parser("stop", help=cmd_stop.__doc__)
    p_stop.add_argument("--state-dir", type=str, required=True)
    p_stop.add_argument("--timeout", type=float, default=10.0,
                        help="seconds to wait for the SIGTERM drain before "
                             "SIGKILL")
    p_stop.set_defaults(handler=cmd_stop)

    p_doctor = sub.add_parser("doctor", help=cmd_doctor.__doc__)
    p_doctor.add_argument("--state-dir", type=str, required=True)
    p_doctor.set_defaults(handler=cmd_doctor)

    p_chaos = sub.add_parser("chaos", help=cmd_chaos.__doc__)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--seeds", type=str, default=None,
                         help="LOW:HIGH seed range (overrides --seed)")
    p_chaos.add_argument("--profile", type=str, default="chaos",
                         help="fault profile(s), '+'-joined: drop, delay, "
                              "duplicate, reorder, slow, partition, crash, "
                              "or chaos (everything)")
    p_chaos.add_argument("--rate", type=float, default=0.25,
                         help="total message-fault rate split across the "
                              "profile's message kinds")
    p_chaos.add_argument("--horizon", type=int, default=8,
                         help="scheduled faults hit only the first N "
                              "messages per link")
    p_chaos.add_argument("--f", type=int, default=1, help="crash tolerance")
    p_chaos.add_argument("--data-size", type=int, default=8,
                         help="value size in bytes (D/8)")
    p_chaos.add_argument("--transport", choices=("sim", "tcp", "both"),
                         default="both",
                         help="simulated network, real sockets, or both "
                              "(both also asserts fault-firing parity)")
    p_chaos.add_argument("--writers", type=int, default=2)
    p_chaos.add_argument("--readers", type=int, default=2)
    p_chaos.add_argument("--ops", type=int, default=3,
                         help="operations per writer/reader")
    p_chaos.add_argument("--tick-s", type=float, default=0.02,
                         help="wall-clock seconds per fault-plan tick "
                              "(TCP transport)")
    p_chaos.add_argument("--state-dir", type=str, default=None,
                         help="persist journals + faults.json here "
                              "(default: throwaway temp dir)")
    p_chaos.add_argument("--journal", type=str, default=None,
                         help="write one JSON line per seed to this path")
    p_chaos.set_defaults(handler=cmd_chaos)

    p_server = sub.add_parser("server", help=cmd_server.__doc__)
    p_server.add_argument("--name", type=str, required=True)
    p_server.add_argument("--index", type=int, required=True)
    p_server.add_argument("--f", type=int, required=True)
    p_server.add_argument("--data-size", type=int, required=True)
    p_server.add_argument("--state-dir", type=str, required=True)
    p_server.add_argument("--host", type=str, default="127.0.0.1")
    p_server.add_argument("--port", type=int, default=0)
    p_server.add_argument("--handle-delay-ms", type=float, default=0.0)
    p_server.set_defaults(handler=cmd_server)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
