"""Regime-sweep engine: crossover curves over (scenario, n, k, f, c, D) grids.

The paper's headline result is a *shape*: adaptive storage follows
``Theta(min(f, c) * D)`` (Section 5), linear in concurrency like a coded
store before the crossover at ``c ~ k`` and flat like replication beyond
it. One grid point is a single workload run; reproducing the shape needs
*many* points — every register, many ``(f, k)`` regimes, a span of
concurrency levels, several value sizes, and (because the bounds are
adversarial) workloads with crashes and shaped load, not just crash-free
uniform writer waves. This module is the engine for that:

* :class:`SweepGrid` — declare the grid (cartesian or explicit) over
  register class, ``f``, ``k``, ``c``, ``D`` (optionally padded to expose
  the :class:`~repro.coding.padding.PaddedScheme` constants), and seed;
* :class:`Scenario` — the workload axis: a shape (uniform wave or one of
  the :mod:`~repro.workloads.patterns` generators) bound to an optional
  seed-derived deterministic crash plan
  (:func:`~repro.sim.failures.seeded_crash_schedule`);
* :func:`run_sweep` — execute every ``scenario x point`` cell
  deterministically, batching each cell's write wave through the runner's
  :class:`~repro.coding.oracles.BatchEncodePlan` stacked encode pass;
* :class:`SweepResult` — the measured table: renderable via
  :func:`~repro.analysis.tables.format_table`, serialisable to JSON
  (``benchmarks/results/``), sliceable into per-curve series.

Each record also carries closed-form **reference overlays** so measured
curves can be plotted against the literature:

* ``thm1_bits`` — this paper's Theorem 1 lower bound
  ``min((f+1) D/2, c (D/2+1))``;
* ``adaptive_bound_bits`` — the Section 5 upper bound
  ``(min(f, c)+1) * (n/k) * D``;
* ``disintegrated_bits`` — Berger–Keidar–Spiegelman's integrated bound for
  disintegrated storage (arXiv:1805.06265), ``min(f+1, c) * D``, which
  tightens Theorem 1's constant and drops its ``+1``-per-piece slack;
* ``lrc_floor_bits`` — the per-value storage floor ``n * D / k_max`` of a
  locally recoverable code at the same ``(n, f)`` under the
  Cadambe–Mazumdar dimension bound (arXiv:1308.3200) for locality ``r``
  (via the distance corollary ``d <= n - k - ceil(k/r) + 2``).

The bounds are linear in ``D``, so sweeping ``D`` down to a few bytes
(with ``pad=True`` for sizes no code dimension divides) exposes the
additive terms the asymptotic curves hide: the 4-byte length prefix and
per-block rounding of :class:`~repro.coding.padding.PaddedScheme`, and the
per-block constants of small codewords.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.analysis.tables import (
    flat_within,
    format_table,
    monotone_nondecreasing,
)
from repro.coding import backends as coding_backends
from repro.coding.padding import PaddedScheme
from repro.coding.reed_solomon import ReedSolomonCode
from repro.errors import ParameterError, SchedulerExhausted
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CASRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.sim.failures import CrashSchedule, seeded_crash_schedule
from repro.workloads import (
    WorkloadSpec,
    churn,
    read_heavy,
    run_register_workload,
    staggered_writers,
    writer_name,
)

# --------------------------------------------------------------- overlays


def theorem1_bound_bits(f: int, c: int, data_bits: int) -> int:
    """Theorem 1 (this paper): storage >= ``min((f+1) D/2, c (D/2+1))``."""
    return min((f + 1) * data_bits // 2, c * (data_bits // 2 + 1))


def adaptive_upper_bound_bits(f: int, k: int, c: int, data_bits: int) -> int:
    """Section 5 upper bound: ``(min(f, c) + 1) * (n/k) * D``, ``n = 2f+k``."""
    n = 2 * f + k
    return (min(f, c) + 1) * n * data_bits // k


def disintegrated_bound_bits(f: int, c: int, data_bits: int) -> int:
    """Berger–Keidar–Spiegelman (arXiv:1805.06265): ``min(f+1, c) * D``.

    Their integrated bound covers *disintegrated* storage — algorithms
    whose reads reassemble values from pieces (coded or Byzantine
    non-authenticated) — and strengthens Theorem 1 by a factor ~2.
    """
    return min(f + 1, c) * data_bits


def lrc_max_dimension(n: int, f: int, locality: int) -> int:
    """Largest LRC dimension ``k`` at length ``n`` tolerating ``f`` erasures.

    Uses the Cadambe–Mazumdar bound (arXiv:1308.3200) through its distance
    corollary ``d <= n - k - ceil(k/r) + 2``: tolerating ``f`` erasures
    needs ``d >= f + 1``, so ``k + ceil(k / locality) <= n - f + 1``.
    """
    if n < 1 or f < 0 or locality < 1:
        raise ParameterError("need n >= 1, f >= 0, locality >= 1")
    best = 0
    for k in range(1, n + 1):
        if k + -(-k // locality) <= n - f + 1:
            best = k
    return best


def lrc_storage_floor_bits(
    n: int, f: int, data_bits: int, locality: int = 2
) -> int:
    """Per-value storage floor ``ceil(n * D / k_max)`` of an (n, f) LRC.

    The concurrency-independent cost of *one* codeword under the best
    locality-``locality`` code the Cadambe–Mazumdar bound admits — the
    flat line coded crossover curves are measured against.
    """
    k_max = lrc_max_dimension(n, f, locality)
    if k_max == 0:
        return n * data_bits  # no LRC exists; replication is the floor
    return -(-n * data_bits // k_max)


# --------------------------------------------------------------- registry


@dataclass(frozen=True)
class RegisterEntry:
    """One sweepable register: protocol class, setup builder, k-use flag.

    ``uses_k = False`` marks replication-based registers whose setup
    ignores the grid's code dimension (ABD: ``k = 1``, ``n = 2f + 1``);
    the grid canonicalises their points to ``k = 1`` so a cartesian
    product does not re-run byte-identical simulations once per k value.
    """

    cls: type
    build_setup: Callable[["SweepPoint"], RegisterSetup]
    uses_k: bool = True


def _padded_scheme_factory(setup: RegisterSetup) -> PaddedScheme:
    """Length-prefix-and-pad RS codec for D values no ``k`` divides."""
    return PaddedScheme(
        setup.data_size_bytes,
        setup.k,
        lambda padded_bytes: ReedSolomonCode(setup.k, setup.n, padded_bytes),
    )


def _coded_setup(point: "SweepPoint") -> RegisterSetup:
    if point.padded:
        return RegisterSetup(
            f=point.f, k=point.k, data_size_bytes=point.data_size_bytes,
            scheme_factory=_padded_scheme_factory,
        )
    return RegisterSetup(
        f=point.f, k=point.k, data_size_bytes=point.data_size_bytes
    )


#: Register classes the sweep engine can drive, by table name. ABD is the
#: ``k = 1`` (replication) point of the code space; every other register
#: uses the coded ``n = 2f + k`` setup.
REGISTER_REGISTRY: dict[str, RegisterEntry] = {
    "abd": RegisterEntry(
        ABDRegister,
        lambda p: replication_setup(f=p.f, data_size_bytes=p.data_size_bytes),
        uses_k=False,
    ),
    "coded-only": RegisterEntry(CodedOnlyRegister, _coded_setup),
    "cas": RegisterEntry(CASRegister, _coded_setup),
    "adaptive": RegisterEntry(AdaptiveRegister, _coded_setup),
    "safe": RegisterEntry(SafeCodedRegister, _coded_setup),
}


def register_uses_k(name: str) -> bool:
    """True when register ``name``'s setup honours the grid's ``k``."""
    if name not in REGISTER_REGISTRY:
        raise ParameterError(
            f"unknown register {name!r}; known: {sorted(REGISTER_REGISTRY)}"
        )
    return REGISTER_REGISTRY[name].uses_k


# -------------------------------------------------------------- scenarios


#: Workload shapes a :class:`Scenario` can bind. ``uniform`` is the paper's
#: c-burst via :func:`~repro.workloads.runner.run_register_workload`; the
#: rest are the :mod:`~repro.workloads.patterns` generators.
SCENARIO_PATTERNS = ("uniform", "staggered", "read-heavy", "churn")


@dataclass(frozen=True)
class Scenario:
    """One workload shape plus an optional deterministic failure plan.

    A scenario turns a grid point's ``(register, f, k, c, D, seed)`` into a
    concrete run. ``pattern`` picks the shape; ``c`` always drives the
    writer pool (uniform/staggered writers, read-heavy's writer side,
    churn's clients per wave), so the c-axis keeps meaning *write
    concurrency* across scenarios:

    * ``uniform`` — the classic burst: ``c`` writers x ``ops_per_client``
      writes, plus ``readers`` reader clients;
    * ``staggered`` — ``c`` writers pipelining ``ops_per_client`` writes
      back-to-back (sustained-load GC shape);
    * ``read-heavy`` — ``c`` writers against a fixed pool of ``readers``
      repeat readers (``reads_per_reader`` each, FW-termination stress);
    * ``churn`` — ``ops_per_client`` waves of ``c`` write-then-read
      clients (client-turnover shape).

    ``bo_crashes``/``client_crashes`` attach a seed-derived deterministic
    :class:`~repro.sim.failures.CrashSchedule`: base-object kills are
    clamped to the point's ``f`` budget, client kills to the first-created
    client cohort, and both fire at seed-jittered times starting at
    ``crash_start``. Same seed, same crash victims, same firing order —
    byte-identical sweep JSON extends to crash runs.
    """

    name: str
    pattern: str = "uniform"
    ops_per_client: int = 1
    readers: int = 0
    reads_per_reader: int = 1
    bo_crashes: int = 0
    client_crashes: int = 0
    crash_start: int = 15
    crash_spacing: int = 13

    def __post_init__(self) -> None:
        if self.pattern not in SCENARIO_PATTERNS:
            raise ParameterError(
                f"unknown scenario pattern {self.pattern!r}; known: "
                f"{SCENARIO_PATTERNS}"
            )
        if self.ops_per_client < 1:
            raise ParameterError("ops_per_client must be >= 1")
        if min(self.readers, self.reads_per_reader, self.bo_crashes,
               self.client_crashes) < 0:
            raise ParameterError("scenario counts must be >= 0")
        if self.crash_start < 0 or self.crash_spacing < 1:
            raise ParameterError(
                "need crash_start >= 0 and crash_spacing >= 1"
            )
        if self.pattern == "read-heavy" and self.readers < 1:
            raise ParameterError("read-heavy scenarios need readers >= 1")

    @property
    def has_crashes(self) -> bool:
        return bool(self.bo_crashes or self.client_crashes)

    def client_cohort(self, c: int) -> tuple[str, ...]:
        """The first-created client names of a run at concurrency ``c`` —
        the pool client crashes are drawn from (these clients exist from
        the first scheduled action, so every derived kill can fire)."""
        if self.pattern == "uniform":
            return tuple(writer_name(i) for i in range(c))
        if self.pattern == "staggered":
            return tuple(f"sw{i}" for i in range(c))
        if self.pattern == "read-heavy":
            return tuple(f"rw{i}" for i in range(c))
        return tuple(f"c0-{i}" for i in range(c))  # churn wave 0

    def crash_schedule(self, point: "SweepPoint", n: int) -> CrashSchedule:
        """The point's deterministic crash plan (empty when crash-free).

        Base-object kills are clamped to ``f`` (the model's budget) and
        client kills to the cohort size, so a scenario written for large
        grids degrades gracefully on small regimes instead of raising.
        """
        if not self.has_crashes:
            return CrashSchedule()
        cohort = self.client_cohort(point.c)
        return seeded_crash_schedule(
            point.seed,
            bo_count=n,
            bo_crashes=min(self.bo_crashes, point.f),
            client_names=cohort,
            client_crashes=min(self.client_crashes, len(cohort)),
            start=self.crash_start,
            spacing=self.crash_spacing,
        )


#: The default scenario: the paper's crash-free uniform writer wave.
UNIFORM_SCENARIO = Scenario("uniform")


# ------------------------------------------------------------------- grid


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a register run at fixed ``(f, k, c, D, seed)``.

    ``register`` names an entry of :data:`REGISTER_REGISTRY`; ``c`` is the
    paper's write-concurrency (the number of concurrent writer clients);
    ``data_size_bytes`` is ``D / 8``. The register's ``n`` is derived from
    its setup (``2f + k`` coded, ``2f + 1`` for ABD). ``padded`` codes the
    value through a :class:`~repro.coding.padding.PaddedScheme` (length
    prefix + zero pad), lifting the ``k | D`` divisibility requirement —
    the D-axis device for exposing small-D additive constants.
    """

    register: str
    f: int
    k: int
    c: int
    data_size_bytes: int
    seed: int = 0
    padded: bool = False

    def setup(self) -> RegisterSetup:
        """Build (and thereby validate) this point's register setup."""
        if self.register not in REGISTER_REGISTRY:
            raise ParameterError(
                f"unknown register {self.register!r}; known: "
                f"{sorted(REGISTER_REGISTRY)}"
            )
        if self.c < 1:
            raise ParameterError("concurrency c must be >= 1")
        return REGISTER_REGISTRY[self.register].build_setup(self)

    @property
    def n(self) -> int:
        return self.setup().n


@dataclass(frozen=True)
class SweepGrid:
    """An ordered set of sweep points (duplicates collapsed, order kept)."""

    points: tuple[SweepPoint, ...]

    @classmethod
    def explicit(cls, points: Iterable[SweepPoint]) -> "SweepGrid":
        """Build a grid from explicit points, validating each.

        Points of registers that ignore ``k`` (see
        :func:`register_uses_k`) are canonicalised to ``k = 1`` (and
        ``padded = False`` — replication shards nothing, so there is
        nothing to pad) before deduplication, so an ABD point appears —
        and runs — once per ``(f, c, D, seed)`` no matter how many k
        values the grid spans.
        """
        canonical = (
            point
            if register_uses_k(point.register)
            else replace(point, k=1, padded=False)
            for point in points
        )
        unique = tuple(dict.fromkeys(canonical))
        for point in unique:
            point.setup()
        return cls(unique)

    @classmethod
    def cartesian(
        cls,
        *,
        registers: Sequence[str],
        fs: Sequence[int],
        ks: Sequence[int],
        cs: Sequence[int],
        data_sizes: Sequence[int],
        seed: int = 0,
        pad: bool = False,
        where: Callable[[SweepPoint], bool] | None = None,
    ) -> "SweepGrid":
        """Cartesian product grid, optionally filtered by ``where``.

        Without ``pad``, ``data_sizes`` entries must be divisible by every
        ``k`` they meet (pick a multiple of ``lcm(ks)``), or use ``where``
        to skip the offending combinations; invalid surviving points raise
        :class:`~repro.errors.ParameterError` at grid-build time, not
        mid-sweep. With ``pad=True`` every coded point routes through a
        :class:`~repro.coding.padding.PaddedScheme`, which accepts any
        value size — the D-axis mode.
        """
        points = []
        for register, f, k, data, c in itertools.product(
            registers, fs, ks, data_sizes, cs
        ):
            point = SweepPoint(
                register=register, f=f, k=k, c=c,
                data_size_bytes=data, seed=seed, padded=pad,
            )
            if where is not None and not where(point):
                continue
            points.append(point)
        return cls.explicit(points)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def nk_points(self) -> list[tuple[int, int]]:
        """Distinct ``(n, k)`` pairs the grid covers, sorted."""
        return sorted({(point.n, point.k) for point in self.points})


# ---------------------------------------------------------------- results


@dataclass(frozen=True)
class SweepRecord:
    """One executed ``scenario x grid-point`` cell: parameters,
    measurements, overlays.

    ``scenario`` names the :class:`Scenario` that shaped the run;
    ``bo_crashes``/``client_crashes`` count the crashes that actually
    *fired* (deterministic per seed — a scheduled kill may never fire if
    the run drains first). ``wall_clock_s`` is the measured wall-clock of
    the cell's simulation run and ``worker`` the pool-worker number that
    executed it (``0`` for in-process serial runs — see
    :mod:`repro.analysis.executor`). Both default so pre-timing JSON
    documents still load, and both are *metadata*, not measurement:
    :meth:`SweepResult.to_json` can exclude them to obtain the
    deterministic byte-identical document two identical sweeps agree on —
    regardless of worker count.
    """

    register: str
    f: int
    k: int
    n: int
    c: int
    data_bits: int
    seed: int
    peak_bo_state_bits: int
    peak_storage_bits: int
    final_bo_state_bits: int
    completed_writes: int
    steps: int
    thm1_bits: int
    adaptive_bound_bits: int
    disintegrated_bits: int
    lrc_floor_bits: int
    scenario: str = "uniform"
    padded: bool = False
    completed_reads: int = 0
    bo_crashes: int = 0
    client_crashes: int = 0
    wall_clock_s: float = 0.0
    worker: int = 0
    coding_backend: str = ""


#: Default columns of :meth:`SweepResult.table`.
TABLE_COLUMNS = (
    "scenario", "register", "f", "k", "n", "c", "data_bits",
    "peak_bo_state_bits", "thm1_bits", "disintegrated_bits",
    "adaptive_bound_bits", "lrc_floor_bits",
)

#: JSON document version written by :meth:`SweepResult.to_json`. Version 1
#: predates the scenario axis; its records load with scenario "uniform",
#: no padding, and zero crash counts — exactly what those sweeps ran.
#: Version 2 predates the parallel executor; its records load with
#: ``worker = 0`` — every v2 sweep ran in-process.
#: Version 3 predates the coding-backend seam; its records load with an
#: empty ``coding_backend`` (the kernel those sweeps ran is today's
#: ``numpy-table`` reference — results are byte-identical either way).
SCHEMA_VERSION = 4
_SUPPORTED_VERSIONS = (1, 2, 3, SCHEMA_VERSION)

#: Per-record execution metadata: fields that describe *how* a cell ran
#: (how long, on which pool worker, under which GF kernel), never *what*
#: it measured. These are exactly the fields
#: ``to_json(include_timing=False)`` strips so determinism checks compare
#: pure measurement payloads — backends are byte-identical, so the active
#: kernel is as immaterial to the measurement as the worker number.
RECORD_METADATA_FIELDS = ("wall_clock_s", "worker", "coding_backend")


@dataclass
class SweepResult:
    """The measured sweep: a flat record table plus rendering/IO helpers."""

    records: list[SweepRecord]

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------ slicing

    def select(self, **filters: object) -> list[SweepRecord]:
        """Records whose fields equal every ``filters`` entry, grid order."""
        return [
            record
            for record in self.records
            if all(getattr(record, key) == value for key, value in filters.items())
        ]

    def series(
        self, y: str = "peak_bo_state_bits", x: str = "c", **filters: object
    ) -> list[tuple[int, int]]:
        """One curve: sorted ``(x, y)`` samples of the matching records."""
        return sorted(
            (getattr(record, x), getattr(record, y))
            for record in self.select(**filters)
        )

    def nk_points(self) -> list[tuple[int, int]]:
        """Distinct ``(n, k)`` pairs measured, sorted."""
        return sorted({(record.n, record.k) for record in self.records})

    def scenarios(self) -> list[str]:
        """Scenario names present, in record (sweep execution) order."""
        return list(dict.fromkeys(record.scenario for record in self.records))

    # ---------------------------------------------------------- rendering

    def table(self, columns: Sequence[str] = TABLE_COLUMNS) -> str:
        """Render the records as an aligned monospace table."""
        rows = [
            [getattr(record, column) for column in columns]
            for record in self.records
        ]
        return format_table(list(columns), rows)

    # ----------------------------------------------------------------- IO

    def to_json(self, include_timing: bool = True) -> str:
        """Serialise to a stable, versioned JSON document.

        ``include_timing=False`` drops the per-record execution metadata
        (:data:`RECORD_METADATA_FIELDS`: ``wall_clock_s`` and the
        executor's ``worker`` number), yielding the deterministic document
        two runs of the same grid agree on byte-for-byte — at any worker
        count (every *measured* field is deterministic — crash victims and
        firing order included, since crash plans are seed-derived;
        wall-clock and pool placement are not).
        """
        records = [asdict(record) for record in self.records]
        record_fields = [field.name for field in fields(SweepRecord)]
        if not include_timing:
            for metadata_field in RECORD_METADATA_FIELDS:
                record_fields.remove(metadata_field)
                for record in records:
                    del record[metadata_field]
        return json.dumps(
            {
                "version": SCHEMA_VERSION,
                "record_fields": record_fields,
                "records": records,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        document = json.loads(text)
        if document.get("version") not in _SUPPORTED_VERSIONS:
            raise ParameterError(
                f"unsupported sweep result version {document.get('version')!r}"
            )
        return cls([SweepRecord(**record) for record in document["records"]])

    def save(self, path: str | Path) -> Path:
        """Write the JSON document to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        return cls.from_json(Path(path).read_text())


def render_crossover_blocks(
    result: SweepResult, cs: Sequence[int]
) -> str:
    """Render one measured-vs-overlay table per scenario x coded regime.

    The shared renderer behind ``bench_crossover.py`` and
    ``bench_scenario_sweep.py``: rows are the measured per-register curves
    over ``cs`` (k-ignoring registers contribute their per-f curve),
    followed by the Theorem 1 / BKS'18 / LRC overlay rows. The caller
    pre-filters ``result`` to one ``(D, padded)`` slice; scenarios render
    as separate blocks.
    """
    blocks = []
    for scenario in result.scenarios():
        sub = SweepResult(result.select(scenario=scenario))
        registers = list(dict.fromkeys(r.register for r in sub.records))
        regimes = sorted(
            {(r.f, r.k) for r in sub.records if register_uses_k(r.register)}
        )
        for f, k in regimes:
            sample = sub.select(f=f, k=k, register="coded-only") or \
                sub.select(f=f, k=k)
            n = sample[0].n
            rows = []
            for register in registers:
                filters = (
                    dict(f=f, k=k) if register_uses_k(register) else dict(f=f)
                )
                series = dict(sub.series(register=register, **filters))
                rows.append([register] + [series.get(c, "-") for c in cs])
            by_c = {r.c: r for r in sample}
            for label, field in (
                ("~thm1 (lower bd)", "thm1_bits"),
                ("~bks18 (disint.)", "disintegrated_bits"),
                ("~lrc floor (r=2)", "lrc_floor_bits"),
            ):
                rows.append(
                    [label]
                    + [getattr(by_c[c], field) if c in by_c else "-"
                       for c in cs]
                )
            blocks.append(format_table(
                [f"{scenario} f={f} k={k} n={n}"] + [f"c={c}" for c in cs],
                rows,
            ))
    return "\n\n".join(blocks)


def crossover_shape_violations(result: SweepResult) -> list[str]:
    """Check the paper's cross-regime curve shapes; return violations.

    The two shape facts every crossover sweep must reproduce, checked per
    ``(scenario, D, padded)`` group so scenario and D axes never mix into
    one curve: ABD (replication) storage is flat in ``c`` at every ``f``,
    and coded-only storage is monotone nondecreasing in ``c`` at every
    ``(f, k)``.

    Crash scenarios get the failure-adapted form: a crashed base object's
    bits vanish from every later snapshot and a crashed writer may leave a
    partial wave, so exact flatness/monotonicity is only required up to a
    relative slack of ``fired crashes / n`` — the largest peak fraction a
    single victim can hide. Registers absent from ``result`` are skipped.
    An empty list means the shapes hold — the single criterion shared by
    ``repro report``, the crossover benchmark CLI, and the scenario-sweep
    smoke tests.
    """
    violations: list[str] = []
    groups = sorted(
        {(r.scenario, r.data_bits, r.padded) for r in result.records}
    )
    for scenario, data_bits, padded in groups:
        sub = SweepResult(
            result.select(scenario=scenario, data_bits=data_bits,
                          padded=padded)
        )
        slack = max(
            ((r.bo_crashes + r.client_crashes) / r.n for r in sub.records),
            default=0.0,
        )
        label = f"scenario={scenario} D={data_bits}"
        regimes = sorted(
            {(r.f, r.k) for r in sub.records if register_uses_k(r.register)}
        )
        for f, k in regimes:
            abd = [y for _, y in sub.series(f=f, register="abd")]
            if not flat_within(abd, slack=slack):
                violations.append(
                    f"ABD not flat in c at {label} f={f} "
                    f"(slack {slack:.2f}): {abd}"
                )
            coded = [y for _, y in sub.series(f=f, k=k, register="coded-only")]
            if not monotone_nondecreasing(coded, slack=slack):
                violations.append(
                    f"coded-only not monotone in c at {label} f={f}, k={k} "
                    f"(slack {slack:.2f}): {coded}"
                )
    return violations


# ----------------------------------------------------------------- engine


def _run_cell(
    scenario: Scenario,
    point: SweepPoint,
    *,
    max_steps: int,
    audit_storage_every: int,
) -> tuple[object, RegisterSetup, int, int, int]:
    """Execute one ``scenario x point`` cell.

    Returns ``(outcome, setup, steps, fired_bo, fired_client)`` where
    ``outcome`` exposes the WorkloadResult measurement surface (peaks,
    completed counts) — :class:`~repro.workloads.patterns.PatternRun`
    provides the same fields, so no ``isinstance`` branching here.
    """
    protocol_cls = REGISTER_REGISTRY[point.register].cls
    setup = point.setup()
    schedule = scenario.crash_schedule(point, setup.n)
    plans = []

    def configure(sim, scheduler):
        plan = schedule.install(scheduler)
        plans.append(plan)
        return plan

    configure_hook = configure if len(schedule) else None
    if scenario.pattern == "uniform":
        spec = WorkloadSpec(
            writers=point.c,
            writes_per_writer=scenario.ops_per_client,
            readers=scenario.readers,
            reads_per_reader=scenario.reads_per_reader,
            seed=point.seed,
        )
        outcome = run_register_workload(
            protocol_cls, setup, spec, max_steps=max_steps,
            configure=configure_hook,
            audit_storage_every=audit_storage_every,
        )
        steps = outcome.run.steps
    else:
        if scenario.pattern == "staggered":
            pattern_run = staggered_writers(
                protocol_cls, setup, writers=point.c,
                writes_each=scenario.ops_per_client, seed=point.seed,
            )
        elif scenario.pattern == "read-heavy":
            pattern_run = read_heavy(
                protocol_cls, setup, readers=scenario.readers,
                reads_each=scenario.reads_per_reader, writers=point.c,
                seed=point.seed,
            )
        else:  # churn
            pattern_run = churn(
                protocol_cls, setup, waves=scenario.ops_per_client,
                clients_per_wave=point.c, seed=point.seed,
            )
        run = pattern_run.drain(
            max_steps=max_steps, configure=configure_hook,
            audit_storage_every=audit_storage_every,
        )
        if not run.quiescent:
            # Match the uniform path's require_quiescence: a truncated cell
            # must never masquerade as a measured one in the result table.
            raise SchedulerExhausted(
                f"{scenario.name}/{point.register}: {max_steps} steps "
                f"without quiescence (f={point.f}, k={point.k}, "
                f"c={point.c})"
            )
        outcome = pattern_run
        steps = run.steps
    fired_bo = plans[0].fired_bo_crashes if plans else 0
    fired_client = plans[0].fired_client_crashes if plans else 0
    return outcome, setup, steps, fired_bo, fired_client


def normalize_scenarios(
    scenarios: Sequence[Scenario] | None,
    writes_per_writer: int = 1,
    readers: int = 0,
) -> tuple[Scenario, ...]:
    """Resolve the scenario axis of a sweep call, validating it.

    ``scenarios = None`` builds the single crash-free uniform wave from
    the legacy ``writes_per_writer``/``readers`` shape knobs; an explicit
    sequence must carry its shape on each :class:`Scenario` (the legacy
    knobs are rejected) and use distinct names. Shared by the serial
    :func:`run_sweep` and the parallel executor so both paths agree on
    the exact cell list.
    """
    if scenarios is None:
        return (
            Scenario(
                "uniform", ops_per_client=writes_per_writer, readers=readers
            ),
        )
    if writes_per_writer != 1 or readers != 0:
        # The shape knobs live on the Scenario once scenarios are explicit;
        # silently dropping the legacy arguments would measure the wrong
        # workload.
        raise ParameterError(
            "pass writes_per_writer/readers via each Scenario "
            "(ops_per_client/readers) when scenarios are given explicitly"
        )
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise ParameterError(f"duplicate scenario names: {names}")
    return tuple(scenarios)


def sweep_cells(
    grid: SweepGrid, scenarios: Sequence[Scenario]
) -> list[tuple[Scenario, SweepPoint]]:
    """The sweep's cell list: every ``scenario x point``, scenario-major.

    This ordering *is* the result-record ordering — the serial loop runs
    it front to back, and the parallel executor merges worker outputs
    back into it — so a cell's position here is its identity for
    checkpoint journals.
    """
    return [
        (scenario, point) for scenario in scenarios for point in grid
    ]


def execute_cell(
    scenario: Scenario,
    point: SweepPoint,
    *,
    max_steps: int = 400_000,
    lrc_locality: int = 2,
    audit_storage_every: int = 0,
    worker: int = 0,
    coding_backend: str = "",
) -> SweepRecord:
    """Run one ``scenario x point`` cell and build its :class:`SweepRecord`.

    The single record constructor both execution paths share: the serial
    :func:`run_sweep` loop calls it in-process (``worker = 0``) and the
    pool workers of :mod:`repro.analysis.executor` call it in their own
    processes — every field except the :data:`RECORD_METADATA_FIELDS` is
    a pure function of ``(scenario, point)`` and the keyword knobs, which
    is what makes pooled sweeps byte-identical to serial ones. A non-empty
    ``coding_backend`` activates that GF kernel first (the executor passes
    it so spawn-pool workers re-resolve the parent's choice); the record
    always carries the name that actually ran. Backends are byte-identical,
    so this is execution metadata, not a measurement knob.
    """
    if coding_backend:
        coding_backends.use_backend(coding_backend)
    started = time.perf_counter()
    outcome, setup, steps, fired_bo, fired_client = _run_cell(
        scenario, point, max_steps=max_steps,
        audit_storage_every=audit_storage_every,
    )
    wall_clock_s = round(time.perf_counter() - started, 6)
    data_bits = setup.data_size_bits
    return SweepRecord(
        register=point.register,
        f=point.f,
        k=point.k,
        n=setup.n,
        c=point.c,
        data_bits=data_bits,
        seed=point.seed,
        peak_bo_state_bits=outcome.peak_bo_state_bits,
        peak_storage_bits=outcome.peak_storage_bits,
        final_bo_state_bits=outcome.final_bo_state_bits,
        completed_writes=outcome.completed_writes,
        steps=steps,
        thm1_bits=theorem1_bound_bits(point.f, point.c, data_bits),
        adaptive_bound_bits=adaptive_upper_bound_bits(
            point.f, point.k, point.c, data_bits
        ),
        disintegrated_bits=disintegrated_bound_bits(
            point.f, point.c, data_bits
        ),
        lrc_floor_bits=lrc_storage_floor_bits(
            setup.n, point.f, data_bits, lrc_locality
        ),
        scenario=scenario.name,
        padded=point.padded,
        completed_reads=outcome.completed_reads,
        bo_crashes=fired_bo,
        client_crashes=fired_client,
        wall_clock_s=wall_clock_s,
        worker=worker,
        coding_backend=coding_backends.get_backend().name,
    )


def run_sweep(
    grid: SweepGrid,
    *,
    scenarios: Sequence[Scenario] | None = None,
    writes_per_writer: int = 1,
    readers: int = 0,
    max_steps: int = 400_000,
    lrc_locality: int = 2,
    audit_storage_every: int = 0,
    progress: Callable[[int, int, SweepPoint], None] | None = None,
) -> SweepResult:
    """Execute every ``scenario x grid-point`` cell; return the results.

    ``scenarios`` defaults to the single crash-free uniform wave (shaped by
    ``writes_per_writer``/``readers``, the pre-scenario interface); passing
    a sequence runs the whole grid once per scenario, scenario-major, so a
    result groups into per-scenario overlay curves. Each cell runs under
    the deterministic fair scheduler with its scenario's seed-derived crash
    plan, so the whole sweep is reproducible from the grid alone (same grid
    and scenarios, same result — byte-identical
    ``to_json(include_timing=False)`` documents, crash victims and firing
    order included; each record additionally carries its measured
    ``wall_clock_s``, which is not deterministic). Every cell's write wave
    is pre-encoded in one stacked
    :class:`~repro.coding.oracles.BatchEncodePlan` pass — by the runner for
    uniform waves, by the pattern builders otherwise — so a 500-writer cell
    costs one ``encode_batch`` call, not 500 encodes.

    ``audit_storage_every = N`` cross-checks the incremental storage ledger
    against the full-walk reference meter every ``N`` actions in every cell
    (CI smoke runs use ``N = 1``: the ledger-vs-reference parity audit at
    literally every action of every scenario x register cell).

    ``progress`` (if given) is called as ``progress(done, total, point)``
    after each cell — the hook CLI front-ends print from.

    This is the serial engine; :func:`repro.analysis.executor.run_sweep`
    is the superset that fans the same cell list out across a process
    pool and journals completed cells for checkpoint/resume.
    """
    cells = sweep_cells(
        grid, normalize_scenarios(scenarios, writes_per_writer, readers)
    )
    records: list[SweepRecord] = []
    for position, (scenario, point) in enumerate(cells, start=1):
        records.append(
            execute_cell(
                scenario, point, max_steps=max_steps,
                lrc_locality=lrc_locality,
                audit_storage_every=audit_storage_every,
            )
        )
        if progress is not None:
            progress(position, len(cells), point)
    return SweepResult(records)


# ------------------------------------------------------- keyspace sweeps
#
# The keyspace axis: cells are whole sharded-keyspace runs
# (:func:`repro.keyspace.run_keyspace`) instead of single-register
# workloads, gridded over (skew, register, keys, shards). Cells stay
# pure functions of their spec + engine knobs — the property the
# parallel executor's byte-identical merge (and these records' JSON
# determinism tests) rely on — so the same serial/pooled split applies:
# :func:`run_keyspace_sweep` here is the serial engine and
# :func:`repro.analysis.executor.run_keyspace_sweep` the pool superset.

#: Default columns of :meth:`KeyspaceSweepResult.table`.
KEYSPACE_TABLE_COLUMNS = (
    "skew", "register", "keys", "shards", "max_shard_c",
    "aggregate_peak_bo_state_bits", "aggregate_peak_storage_bits",
    "aggregate_thm1_floor_bits", "floor_violations", "distinct_keys",
)

#: JSON document version of :meth:`KeyspaceSweepResult.to_json`. Version 1
#: predates the coding-backend seam; its records load with an empty
#: ``coding_backend`` (results are byte-identical across backends).
KEYSPACE_SCHEMA_VERSION = 2
_KEYSPACE_SUPPORTED_VERSIONS = (1, KEYSPACE_SCHEMA_VERSION)


@dataclass(frozen=True)
class KeyspaceRecord:
    """One executed keyspace cell: the spec axes plus aggregate measures.

    ``aggregate_peak_storage_bits`` sums per-shard Definition 2 peaks
    (each shard at its own worst action); ``aggregate_thm1_floor_bits``
    sums each shard's Theorem 1 floor evaluated at that shard's realized
    write concurrency, and ``floor_violations`` counts shards whose peak
    fell below their own floor (0 everywhere or the sweep fails).
    ``wall_clock_s``/``worker``/``coding_backend`` are execution metadata
    exactly as on :class:`SweepRecord` (stripped by
    ``to_json(include_timing=False)``).
    """

    skew: str
    register: str
    f: int
    k: int
    n: int
    keys: int
    shards: int
    vnodes: int
    waves: int
    wave_size: int
    reads_per_wave: int
    data_bits: int
    seed: int
    zipf_s: float
    hot_keys: int
    hot_weight: float
    distinct_keys: int
    active_shards: int
    max_shard_c: int
    aggregate_peak_storage_bits: int
    aggregate_peak_bo_state_bits: int
    aggregate_final_bits: int
    aggregate_thm1_floor_bits: int
    floor_violations: int
    completed_writes: int
    completed_reads: int
    steps: int
    wall_clock_s: float = 0.0
    worker: int = 0
    coding_backend: str = ""


def keyspace_grid(
    *,
    skews: Sequence[str],
    registers: Sequence[str],
    keys: Sequence[int],
    shards: Sequence[int],
    f: int = 1,
    k: int = 2,
    data_size_bytes: int = 16,
    waves: int = 4,
    wave_size: int = 64,
    reads_per_wave: int = 0,
    zipf_s: float = 1.1,
    hot_keys: int = 8,
    hot_weight: float = 0.9,
    vnodes: int = 64,
    seed: int = 0,
) -> tuple["KeyspaceSpec", ...]:
    """Cartesian keyspace cell list over (skew, register, keys, shards).

    Each cell is a :class:`~repro.keyspace.KeyspaceSpec` (frozen, so the
    tuple is deduplicatable and pool-picklable); spec validation runs at
    grid-build time, mirroring :meth:`SweepGrid.explicit`.
    """
    from repro.keyspace import KeyspaceSpec

    specs = [
        KeyspaceSpec(
            keys=key_count, shards=shard_count, register=register, f=f,
            k=k, data_size_bytes=data_size_bytes, skew=skew,
            zipf_s=zipf_s, hot_keys=hot_keys, hot_weight=hot_weight,
            waves=waves, wave_size=wave_size,
            reads_per_wave=reads_per_wave, vnodes=vnodes, seed=seed,
        )
        for skew in skews
        for register in registers
        for key_count in keys
        for shard_count in shards
    ]
    return tuple(dict.fromkeys(specs))


def execute_keyspace_cell(
    spec: "KeyspaceSpec",
    *,
    max_steps: int = 400_000,
    audit_storage_every: int = 0,
    worker: int = 0,
    coding_backend: str = "",
) -> KeyspaceRecord:
    """Run one keyspace cell and flatten it into its sweep record.

    Like :func:`execute_cell`, every field except the execution metadata
    is a pure function of ``(spec, knobs)`` — the pooled keyspace sweep
    is byte-identical to the serial one because of this (a non-empty
    ``coding_backend`` selects the GF kernel, which is byte-identical
    across backends).
    """
    from repro.keyspace import run_keyspace

    if coding_backend:
        coding_backends.use_backend(coding_backend)
    started = time.perf_counter()
    outcome = run_keyspace(
        spec, max_steps=max_steps,
        audit_storage_every=audit_storage_every,
    )
    wall_clock_s = round(time.perf_counter() - started, 6)
    return KeyspaceRecord(
        skew=spec.skew,
        register=spec.register,
        f=spec.f,
        k=spec.k,
        n=spec.n,
        keys=spec.keys,
        shards=spec.shards,
        vnodes=spec.vnodes,
        waves=spec.waves,
        wave_size=spec.wave_size,
        reads_per_wave=spec.reads_per_wave,
        data_bits=spec.data_size_bits,
        seed=spec.seed,
        zipf_s=spec.zipf_s,
        hot_keys=spec.hot_keys,
        hot_weight=spec.hot_weight,
        distinct_keys=outcome.distinct_keys,
        active_shards=outcome.active_shards,
        max_shard_c=outcome.max_shard_c,
        aggregate_peak_storage_bits=outcome.aggregate_peak_storage_bits,
        aggregate_peak_bo_state_bits=outcome.aggregate_peak_bo_state_bits,
        aggregate_final_bits=outcome.aggregate_final_bits,
        aggregate_thm1_floor_bits=sum(
            stats.thm1_floor_bits for stats in outcome.shard_stats
        ),
        floor_violations=len(outcome.floor_violations),
        completed_writes=outcome.completed_writes,
        completed_reads=outcome.completed_reads,
        steps=outcome.total_actions,
        wall_clock_s=wall_clock_s,
        worker=worker,
        coding_backend=coding_backends.get_backend().name,
    )


@dataclass
class KeyspaceSweepResult:
    """The measured keyspace sweep: records + rendering/IO, like
    :class:`SweepResult` (same timing-stripped determinism contract)."""

    records: list[KeyspaceRecord]

    def __len__(self) -> int:
        return len(self.records)

    def select(self, **filters: object) -> list[KeyspaceRecord]:
        """Records whose fields equal every ``filters`` entry, in order."""
        return [
            record
            for record in self.records
            if all(getattr(record, key) == value
                   for key, value in filters.items())
        ]

    def skews(self) -> list[str]:
        return list(dict.fromkeys(record.skew for record in self.records))

    def table(self, columns: Sequence[str] = KEYSPACE_TABLE_COLUMNS) -> str:
        rows = [
            [getattr(record, column) for column in columns]
            for record in self.records
        ]
        return format_table(list(columns), rows)

    def to_json(self, include_timing: bool = True) -> str:
        """Stable versioned JSON; ``include_timing=False`` strips the
        :data:`RECORD_METADATA_FIELDS` for byte-identity comparisons."""
        records = [asdict(record) for record in self.records]
        record_fields = [field.name for field in fields(KeyspaceRecord)]
        if not include_timing:
            for metadata_field in RECORD_METADATA_FIELDS:
                record_fields.remove(metadata_field)
                for record in records:
                    del record[metadata_field]
        return json.dumps(
            {
                "version": KEYSPACE_SCHEMA_VERSION,
                "record_fields": record_fields,
                "records": records,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "KeyspaceSweepResult":
        document = json.loads(text)
        if document.get("version") not in _KEYSPACE_SUPPORTED_VERSIONS:
            raise ParameterError(
                f"unsupported keyspace sweep version "
                f"{document.get('version')!r}"
            )
        return cls([
            KeyspaceRecord(**record) for record in document["records"]
        ])

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "KeyspaceSweepResult":
        return cls.from_json(Path(path).read_text())


def run_keyspace_sweep(
    cells: Sequence["KeyspaceSpec"],
    *,
    max_steps: int = 400_000,
    audit_storage_every: int = 0,
    progress: Callable[[int, int], None] | None = None,
) -> KeyspaceSweepResult:
    """Execute every keyspace cell serially, in cell order.

    The serial engine; :func:`repro.analysis.executor.run_keyspace_sweep`
    fans the same cell list across a spawn pool with a deterministic
    merge. ``progress`` is called as ``progress(done, total)``.
    """
    records = []
    for position, spec in enumerate(cells, start=1):
        records.append(execute_keyspace_cell(
            spec, max_steps=max_steps,
            audit_storage_every=audit_storage_every,
        ))
        if progress is not None:
            progress(position, len(cells))
    return KeyspaceSweepResult(records)


def keyspace_advantage_ratios(
    result: KeyspaceSweepResult,
    *,
    baseline: str = "coded-only",
    contender: str = "adaptive",
) -> dict[str, float]:
    """Per-skew storage-advantage ratio ``baseline / contender``.

    The crossover headline number: how many times more aggregate peak
    base-object storage the baseline register needs than the contender
    under each skew, at otherwise identical cells. Skews missing either
    register (or measured at mismatched shapes) are skipped.
    """
    ratios: dict[str, float] = {}
    for skew in result.skews():
        base = result.select(skew=skew, register=baseline)
        cont = result.select(skew=skew, register=contender)
        if len(base) != 1 or len(cont) != 1:
            continue
        if cont[0].aggregate_peak_bo_state_bits == 0:
            continue
        ratios[skew] = (
            base[0].aggregate_peak_bo_state_bits
            / cont[0].aggregate_peak_bo_state_bits
        )
    return ratios


def keyspace_shape_violations(result: KeyspaceSweepResult) -> list[str]:
    """Check the keyspace sweep's two required shapes; return violations.

    * **Floors** — every cell's shards all met their own Theorem 1 floor
      (``floor_violations == 0``).
    * **Crossover** — concentrating concurrency must widen the adaptive
      register's storage advantage: the coded-only/adaptive aggregate
      peak ratio under ``hotspot`` skew must strictly exceed the same
      ratio under ``uniform`` skew (checked when both skews carry both
      registers). This is the headline question the keyspace answers —
      spread thin, coded-only and adaptive track each other; on hot
      shards, coded-only pays ~``c`` codewords where adaptive caps at
      ``min(f, c) + 1``.

    An empty list means the shapes hold — the shared criterion of the
    keyspace benchmark, its tests, and ``repro keyspace``.
    """
    violations: list[str] = []
    for record in result.records:
        if record.floor_violations:
            violations.append(
                f"{record.skew}/{record.register}: "
                f"{record.floor_violations} shard(s) below their "
                f"Theorem 1 floor"
            )
    ratios = keyspace_advantage_ratios(result)
    if "uniform" in ratios and "hotspot" in ratios:
        if ratios["hotspot"] <= ratios["uniform"]:
            violations.append(
                "hot-key skew did not widen the adaptive advantage: "
                f"coded-only/adaptive ratio {ratios['hotspot']:.2f} "
                f"(hotspot) <= {ratios['uniform']:.2f} (uniform)"
            )
    return violations
