"""Regime-sweep engine: crossover curves over large (n, k, f, c, D) grids.

The paper's headline result is a *shape*: adaptive storage follows
``Theta(min(f, c) * D)`` (Section 5), linear in concurrency like a coded
store before the crossover at ``c ~ k`` and flat like replication beyond
it. One grid point is a single :func:`~repro.workloads.runner.
run_register_workload` call; reproducing the shape needs *many* points —
every register, many ``(f, k)`` regimes, a span of concurrency levels.
This module is the engine for that:

* :class:`SweepGrid` — declare the grid (cartesian or explicit) over
  register class, ``f``, ``k``, ``c``, ``D``, and value seed;
* :func:`run_sweep` — execute every point deterministically, batching each
  point's concurrent-writer wave through the runner's
  :class:`~repro.coding.oracles.BatchEncodePlan` (one stacked encode pass
  per wave, the ``prime_encode_oracles`` machinery);
* :class:`SweepResult` — the measured table: renderable via
  :func:`~repro.analysis.tables.format_table`, serialisable to JSON
  (``benchmarks/results/``), sliceable into per-curve series.

Each record also carries closed-form **reference overlays** so measured
curves can be plotted against the literature:

* ``thm1_bits`` — this paper's Theorem 1 lower bound
  ``min((f+1) D/2, c (D/2+1))``;
* ``adaptive_bound_bits`` — the Section 5 upper bound
  ``(min(f, c)+1) * (n/k) * D``;
* ``disintegrated_bits`` — Berger–Keidar–Spiegelman's integrated bound for
  disintegrated storage (arXiv:1805.06265), ``min(f+1, c) * D``, which
  tightens Theorem 1's constant and drops its ``+1``-per-piece slack;
* ``lrc_floor_bits`` — the per-value storage floor ``n * D / k_max`` of a
  locally recoverable code at the same ``(n, f)`` under the
  Cadambe–Mazumdar dimension bound (arXiv:1308.3200) for locality ``r``
  (via the distance corollary ``d <= n - k - ceil(k/r) + 2``).
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.analysis.tables import format_table
from repro.errors import ParameterError
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CASRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.workloads import WorkloadSpec, run_register_workload

# --------------------------------------------------------------- overlays


def theorem1_bound_bits(f: int, c: int, data_bits: int) -> int:
    """Theorem 1 (this paper): storage >= ``min((f+1) D/2, c (D/2+1))``."""
    return min((f + 1) * data_bits // 2, c * (data_bits // 2 + 1))


def adaptive_upper_bound_bits(f: int, k: int, c: int, data_bits: int) -> int:
    """Section 5 upper bound: ``(min(f, c) + 1) * (n/k) * D``, ``n = 2f+k``."""
    n = 2 * f + k
    return (min(f, c) + 1) * n * data_bits // k


def disintegrated_bound_bits(f: int, c: int, data_bits: int) -> int:
    """Berger–Keidar–Spiegelman (arXiv:1805.06265): ``min(f+1, c) * D``.

    Their integrated bound covers *disintegrated* storage — algorithms
    whose reads reassemble values from pieces (coded or Byzantine
    non-authenticated) — and strengthens Theorem 1 by a factor ~2.
    """
    return min(f + 1, c) * data_bits


def lrc_max_dimension(n: int, f: int, locality: int) -> int:
    """Largest LRC dimension ``k`` at length ``n`` tolerating ``f`` erasures.

    Uses the Cadambe–Mazumdar bound (arXiv:1308.3200) through its distance
    corollary ``d <= n - k - ceil(k/r) + 2``: tolerating ``f`` erasures
    needs ``d >= f + 1``, so ``k + ceil(k / locality) <= n - f + 1``.
    """
    if n < 1 or f < 0 or locality < 1:
        raise ParameterError("need n >= 1, f >= 0, locality >= 1")
    best = 0
    for k in range(1, n + 1):
        if k + -(-k // locality) <= n - f + 1:
            best = k
    return best


def lrc_storage_floor_bits(
    n: int, f: int, data_bits: int, locality: int = 2
) -> int:
    """Per-value storage floor ``ceil(n * D / k_max)`` of an (n, f) LRC.

    The concurrency-independent cost of *one* codeword under the best
    locality-``locality`` code the Cadambe–Mazumdar bound admits — the
    flat line coded crossover curves are measured against.
    """
    k_max = lrc_max_dimension(n, f, locality)
    if k_max == 0:
        return n * data_bits  # no LRC exists; replication is the floor
    return -(-n * data_bits // k_max)


# --------------------------------------------------------------- registry


@dataclass(frozen=True)
class RegisterEntry:
    """One sweepable register: protocol class, setup builder, k-use flag.

    ``uses_k = False`` marks replication-based registers whose setup
    ignores the grid's code dimension (ABD: ``k = 1``, ``n = 2f + 1``);
    the grid canonicalises their points to ``k = 1`` so a cartesian
    product does not re-run byte-identical simulations once per k value.
    """

    cls: type
    build_setup: Callable[["SweepPoint"], RegisterSetup]
    uses_k: bool = True


def _coded_setup(point: "SweepPoint") -> RegisterSetup:
    return RegisterSetup(
        f=point.f, k=point.k, data_size_bytes=point.data_size_bytes
    )


#: Register classes the sweep engine can drive, by table name. ABD is the
#: ``k = 1`` (replication) point of the code space; every other register
#: uses the coded ``n = 2f + k`` setup.
REGISTER_REGISTRY: dict[str, RegisterEntry] = {
    "abd": RegisterEntry(
        ABDRegister,
        lambda p: replication_setup(f=p.f, data_size_bytes=p.data_size_bytes),
        uses_k=False,
    ),
    "coded-only": RegisterEntry(CodedOnlyRegister, _coded_setup),
    "cas": RegisterEntry(CASRegister, _coded_setup),
    "adaptive": RegisterEntry(AdaptiveRegister, _coded_setup),
    "safe": RegisterEntry(SafeCodedRegister, _coded_setup),
}


def register_uses_k(name: str) -> bool:
    """True when register ``name``'s setup honours the grid's ``k``."""
    if name not in REGISTER_REGISTRY:
        raise ParameterError(
            f"unknown register {name!r}; known: {sorted(REGISTER_REGISTRY)}"
        )
    return REGISTER_REGISTRY[name].uses_k


# ------------------------------------------------------------------- grid


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a register run at fixed ``(f, k, c, D, seed)``.

    ``register`` names an entry of :data:`REGISTER_REGISTRY`; ``c`` is the
    paper's write-concurrency (the number of concurrent writer clients);
    ``data_size_bytes`` is ``D / 8``. The register's ``n`` is derived from
    its setup (``2f + k`` coded, ``2f + 1`` for ABD).
    """

    register: str
    f: int
    k: int
    c: int
    data_size_bytes: int
    seed: int = 0

    def setup(self) -> RegisterSetup:
        """Build (and thereby validate) this point's register setup."""
        if self.register not in REGISTER_REGISTRY:
            raise ParameterError(
                f"unknown register {self.register!r}; known: "
                f"{sorted(REGISTER_REGISTRY)}"
            )
        if self.c < 1:
            raise ParameterError("concurrency c must be >= 1")
        return REGISTER_REGISTRY[self.register].build_setup(self)

    @property
    def n(self) -> int:
        return self.setup().n


@dataclass(frozen=True)
class SweepGrid:
    """An ordered set of sweep points (duplicates collapsed, order kept)."""

    points: tuple[SweepPoint, ...]

    @classmethod
    def explicit(cls, points: Iterable[SweepPoint]) -> "SweepGrid":
        """Build a grid from explicit points, validating each.

        Points of registers that ignore ``k`` (see
        :func:`register_uses_k`) are canonicalised to ``k = 1`` before
        deduplication, so an ABD point appears — and runs — once per
        ``(f, c, D, seed)`` no matter how many k values the grid spans.
        """
        canonical = (
            point if register_uses_k(point.register) else replace(point, k=1)
            for point in points
        )
        unique = tuple(dict.fromkeys(canonical))
        for point in unique:
            point.setup()
        return cls(unique)

    @classmethod
    def cartesian(
        cls,
        *,
        registers: Sequence[str],
        fs: Sequence[int],
        ks: Sequence[int],
        cs: Sequence[int],
        data_sizes: Sequence[int],
        seed: int = 0,
        where: Callable[[SweepPoint], bool] | None = None,
    ) -> "SweepGrid":
        """Cartesian product grid, optionally filtered by ``where``.

        ``data_sizes`` entries must be divisible by every ``k`` they meet
        (pick a multiple of ``lcm(ks)``), or use ``where`` to skip the
        offending combinations; invalid surviving points raise
        :class:`~repro.errors.ParameterError` at grid-build time, not
        mid-sweep.
        """
        points = []
        for register, f, k, data, c in itertools.product(
            registers, fs, ks, data_sizes, cs
        ):
            point = SweepPoint(
                register=register, f=f, k=k, c=c,
                data_size_bytes=data, seed=seed,
            )
            if where is not None and not where(point):
                continue
            points.append(point)
        return cls.explicit(points)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def nk_points(self) -> list[tuple[int, int]]:
        """Distinct ``(n, k)`` pairs the grid covers, sorted."""
        return sorted({(point.n, point.k) for point in self.points})


# ---------------------------------------------------------------- results


@dataclass(frozen=True)
class SweepRecord:
    """One executed grid point: parameters, measurements, overlays.

    ``wall_clock_s`` is the measured wall-clock of the point's simulation
    run (the quantity ``bench_sim_throughput.py`` tracks across PRs). It
    defaults to ``0.0`` so pre-timing JSON documents still load, and it is
    *metadata*, not measurement: :meth:`SweepResult.to_json` can exclude it
    to obtain the deterministic byte-identical document two identical
    sweeps agree on.
    """

    register: str
    f: int
    k: int
    n: int
    c: int
    data_bits: int
    seed: int
    peak_bo_state_bits: int
    peak_storage_bits: int
    final_bo_state_bits: int
    completed_writes: int
    steps: int
    thm1_bits: int
    adaptive_bound_bits: int
    disintegrated_bits: int
    lrc_floor_bits: int
    wall_clock_s: float = 0.0


#: Default columns of :meth:`SweepResult.table`.
TABLE_COLUMNS = (
    "register", "f", "k", "n", "c", "data_bits",
    "peak_bo_state_bits", "thm1_bits", "disintegrated_bits",
    "adaptive_bound_bits", "lrc_floor_bits",
)


@dataclass
class SweepResult:
    """The measured sweep: a flat record table plus rendering/IO helpers."""

    records: list[SweepRecord]

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------ slicing

    def select(self, **filters: object) -> list[SweepRecord]:
        """Records whose fields equal every ``filters`` entry, grid order."""
        return [
            record
            for record in self.records
            if all(getattr(record, key) == value for key, value in filters.items())
        ]

    def series(
        self, y: str = "peak_bo_state_bits", x: str = "c", **filters: object
    ) -> list[tuple[int, int]]:
        """One curve: sorted ``(x, y)`` samples of the matching records."""
        return sorted(
            (getattr(record, x), getattr(record, y))
            for record in self.select(**filters)
        )

    def nk_points(self) -> list[tuple[int, int]]:
        """Distinct ``(n, k)`` pairs measured, sorted."""
        return sorted({(record.n, record.k) for record in self.records})

    # ---------------------------------------------------------- rendering

    def table(self, columns: Sequence[str] = TABLE_COLUMNS) -> str:
        """Render the records as an aligned monospace table."""
        rows = [
            [getattr(record, column) for column in columns]
            for record in self.records
        ]
        return format_table(list(columns), rows)

    # ----------------------------------------------------------------- IO

    def to_json(self, include_timing: bool = True) -> str:
        """Serialise to a stable, versioned JSON document.

        ``include_timing=False`` drops the per-record ``wall_clock_s``
        metadata, yielding the deterministic document two runs of the same
        grid agree on byte-for-byte (every *measured* field is
        deterministic; wall-clock is not).
        """
        records = [asdict(record) for record in self.records]
        record_fields = [field.name for field in fields(SweepRecord)]
        if not include_timing:
            record_fields.remove("wall_clock_s")
            for record in records:
                del record["wall_clock_s"]
        return json.dumps(
            {
                "version": 1,
                "record_fields": record_fields,
                "records": records,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        document = json.loads(text)
        if document.get("version") != 1:
            raise ParameterError(
                f"unsupported sweep result version {document.get('version')!r}"
            )
        return cls([SweepRecord(**record) for record in document["records"]])

    def save(self, path: str | Path) -> Path:
        """Write the JSON document to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        return cls.from_json(Path(path).read_text())


def crossover_shape_violations(result: SweepResult) -> list[str]:
    """Check the paper's cross-regime curve shapes; return violations.

    The two shape facts every crossover sweep must reproduce: ABD
    (replication) storage is flat in ``c`` at every ``f``, and coded-only
    storage is monotone nondecreasing in ``c`` at every ``(f, k)``.
    Registers absent from ``result`` are skipped. An empty list means the
    shapes hold — the single criterion shared by ``repro report``, the
    crossover benchmark CLI, and its pytest smoke test.
    """
    violations: list[str] = []
    regimes = sorted(
        {(r.f, r.k) for r in result.records if register_uses_k(r.register)}
    )
    for f, k in regimes:
        abd = [y for _, y in result.series(f=f, register="abd")]
        if abd and len(set(abd)) != 1:
            violations.append(f"ABD not flat in c at f={f}: {abd}")
        coded = [y for _, y in result.series(f=f, k=k, register="coded-only")]
        if coded != sorted(coded):
            violations.append(
                f"coded-only not monotone in c at f={f}, k={k}: {coded}"
            )
    return violations


# ----------------------------------------------------------------- engine


def run_sweep(
    grid: SweepGrid,
    *,
    writes_per_writer: int = 1,
    readers: int = 0,
    max_steps: int = 400_000,
    lrc_locality: int = 2,
    progress: Callable[[int, int, SweepPoint], None] | None = None,
) -> SweepResult:
    """Execute every grid point and return the measured :class:`SweepResult`.

    Each point runs :func:`~repro.workloads.runner.run_register_workload`
    with ``c`` concurrent writers under the deterministic fair scheduler, so
    the whole sweep is reproducible from the grid alone (same grid, same
    result — byte-identical ``to_json(include_timing=False)`` documents;
    each record additionally carries its measured ``wall_clock_s``, which
    is not deterministic). Every point's writer wave is pre-encoded
    in one stacked :class:`~repro.coding.oracles.BatchEncodePlan` pass, so
    a 500-writer point costs one ``encode_batch`` call, not 500 encodes.

    ``progress`` (if given) is called as ``progress(done, total, point)``
    after each point — the hook CLI front-ends print from.
    """
    records: list[SweepRecord] = []
    total = len(grid)
    for position, point in enumerate(grid):
        protocol_cls = REGISTER_REGISTRY[point.register].cls
        setup = point.setup()
        spec = WorkloadSpec(
            writers=point.c,
            writes_per_writer=writes_per_writer,
            readers=readers,
            seed=point.seed,
        )
        started = time.perf_counter()
        outcome = run_register_workload(
            protocol_cls, setup, spec, max_steps=max_steps
        )
        wall_clock_s = round(time.perf_counter() - started, 6)
        data_bits = setup.data_size_bits
        records.append(
            SweepRecord(
                register=point.register,
                f=point.f,
                k=point.k,
                n=setup.n,
                c=point.c,
                data_bits=data_bits,
                seed=point.seed,
                peak_bo_state_bits=outcome.peak_bo_state_bits,
                peak_storage_bits=outcome.peak_storage_bits,
                final_bo_state_bits=outcome.final_bo_state_bits,
                completed_writes=outcome.completed_writes,
                steps=outcome.run.steps,
                thm1_bits=theorem1_bound_bits(point.f, point.c, data_bits),
                adaptive_bound_bits=adaptive_upper_bound_bits(
                    point.f, point.k, point.c, data_bits
                ),
                disintegrated_bits=disintegrated_bound_bits(
                    point.f, point.c, data_bits
                ),
                lrc_floor_bits=lrc_storage_floor_bits(
                    setup.n, point.f, data_bits, lrc_locality
                ),
                wall_clock_s=wall_clock_s,
            )
        )
        if progress is not None:
            progress(position + 1, total, point)
    return SweepResult(records)
