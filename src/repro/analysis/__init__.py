"""Benchmark-output helpers: tables, units, sweeps, series shape checks.

``run_sweep`` re-exported here is the parallel-capable executor
(:mod:`repro.analysis.executor`), a drop-in superset of the serial
engine in :mod:`repro.analysis.sweeps` — identical behaviour (and
byte-identical results) at the default ``workers=1``.
"""

from repro.analysis.executor import (
    SweepJournal,
    default_chunk_size,
    run_sweep,
    sweep_signature,
)
from repro.analysis.sweeps import (
    RECORD_METADATA_FIELDS,
    REGISTER_REGISTRY,
    SCENARIO_PATTERNS,
    UNIFORM_SCENARIO,
    Scenario,
    SweepGrid,
    SweepPoint,
    SweepRecord,
    SweepResult,
    adaptive_upper_bound_bits,
    crossover_shape_violations,
    disintegrated_bound_bits,
    execute_cell,
    lrc_max_dimension,
    lrc_storage_floor_bits,
    register_uses_k,
    render_crossover_blocks,
    sweep_cells,
    theorem1_bound_bits,
)
from repro.analysis.tables import (
    SeriesPoint,
    flat_within,
    format_bits,
    format_ratio,
    format_table,
    linear_slope,
    monotone_nondecreasing,
)

__all__ = [
    "RECORD_METADATA_FIELDS",
    "REGISTER_REGISTRY",
    "SCENARIO_PATTERNS",
    "Scenario",
    "SeriesPoint",
    "SweepGrid",
    "SweepJournal",
    "SweepPoint",
    "SweepRecord",
    "SweepResult",
    "UNIFORM_SCENARIO",
    "adaptive_upper_bound_bits",
    "crossover_shape_violations",
    "default_chunk_size",
    "disintegrated_bound_bits",
    "execute_cell",
    "flat_within",
    "format_bits",
    "format_ratio",
    "format_table",
    "linear_slope",
    "lrc_max_dimension",
    "lrc_storage_floor_bits",
    "monotone_nondecreasing",
    "register_uses_k",
    "render_crossover_blocks",
    "run_sweep",
    "sweep_cells",
    "sweep_signature",
    "theorem1_bound_bits",
]
