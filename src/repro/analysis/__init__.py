"""Benchmark-output helpers: tables, units, series shape checks."""

from repro.analysis.tables import (
    SeriesPoint,
    format_bits,
    format_ratio,
    format_table,
    linear_slope,
    monotone_nondecreasing,
)

__all__ = [
    "SeriesPoint",
    "format_bits",
    "format_ratio",
    "format_table",
    "linear_slope",
    "monotone_nondecreasing",
]
