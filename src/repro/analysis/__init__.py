"""Benchmark-output helpers: tables, units, sweeps, series shape checks."""

from repro.analysis.sweeps import (
    REGISTER_REGISTRY,
    SweepGrid,
    SweepPoint,
    SweepRecord,
    SweepResult,
    adaptive_upper_bound_bits,
    crossover_shape_violations,
    disintegrated_bound_bits,
    lrc_max_dimension,
    lrc_storage_floor_bits,
    register_uses_k,
    run_sweep,
    theorem1_bound_bits,
)
from repro.analysis.tables import (
    SeriesPoint,
    format_bits,
    format_ratio,
    format_table,
    linear_slope,
    monotone_nondecreasing,
)

__all__ = [
    "REGISTER_REGISTRY",
    "SeriesPoint",
    "SweepGrid",
    "SweepPoint",
    "SweepRecord",
    "SweepResult",
    "adaptive_upper_bound_bits",
    "crossover_shape_violations",
    "disintegrated_bound_bits",
    "format_bits",
    "format_ratio",
    "format_table",
    "linear_slope",
    "lrc_max_dimension",
    "lrc_storage_floor_bits",
    "monotone_nondecreasing",
    "register_uses_k",
    "run_sweep",
    "theorem1_bound_bits",
]
