"""One-shot experiment report: every headline claim, one run, one file.

``python -m repro report`` executes a compact version of each benchmark
experiment and renders a markdown report of paper-vs-measured values. It
is the programmatic summary of EXPERIMENTS.md — useful for checking a
fresh checkout or a modified algorithm in one command.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.executor import run_sweep
from repro.analysis.sweeps import (
    Scenario,
    SweepGrid,
    crossover_shape_violations,
)
from repro.analysis.tables import format_table
from repro.lowerbound import run_lower_bound_experiment
from repro.registers import (
    ABDRegister,
    AdaptiveRegister,
    CASRegister,
    ChannelCodedRegister,
    CodedOnlyRegister,
    RegisterSetup,
    SafeCodedRegister,
    replication_setup,
)
from repro.workloads import WorkloadSpec, run_register_workload


@dataclass
class Section:
    title: str
    body: str
    verdict: str  # "reproduced" or a failure note

    def render(self) -> str:
        return f"## {self.title}\n\n```\n{self.body}\n```\n\n**{self.verdict}**\n"


def _theorem1_section() -> Section:
    setup = RegisterSetup(f=3, k=3, data_size_bytes=48)
    rows = []
    ok = True
    for c in (2, 4, 8):
        outcome = run_lower_bound_experiment(CodedOnlyRegister, setup,
                                             concurrency=c)
        ok &= outcome.bound_satisfied and outcome.writes_completed == 0
        rows.append([c, outcome.fired, outcome.storage_bits,
                     outcome.lemma3_bound_bits, outcome.theorem1_bound_bits])
    body = format_table(
        ["c", "fired", "storage(bits)", "lemma3 bound", "thm1 bound"], rows
    )
    verdict = ("Theorem 1 reproduced: storage >= min((f+1)D/2, c(D/2+1)), "
               "no write completed" if ok else "FAILED")
    return Section("Theorem 1 — the lower bound (adversary Ad)", body, verdict)


def _storage_section() -> Section:
    f = k = 3
    data = 48
    coded = RegisterSetup(f=f, k=k, data_size_bytes=data)
    abd = replication_setup(f=f, data_size_bytes=data)
    rows = []
    ok = True
    for c in (1, 2, 4, 8):
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=1)
        row = [c]
        for register_cls, setup in (
            (ABDRegister, abd),
            (CodedOnlyRegister, coded),
            (CASRegister, coded),
            (AdaptiveRegister, coded),
            (SafeCodedRegister, coded),
        ):
            row.append(
                run_register_workload(register_cls, setup, spec)
                .peak_bo_state_bits
            )
        rows.append(row)
    flat_abd = len({row[1] for row in rows}) == 1
    coded_grows = rows[-1][2] > rows[0][2]
    adaptive_caps = rows[-1][4] <= 2 * coded.n * coded.data_size_bits
    safe_flat = len({row[5] for row in rows}) == 1
    ok = flat_abd and coded_grows and adaptive_caps and safe_flat
    body = format_table(
        ["c", "abd", "coded-only", "cas", "adaptive", "safe"], rows
    )
    verdict = ("Theorem 2 / Corollaries 2, 3, 7 reproduced: replication "
               "flat, coded/CAS linear in c, adaptive capped, safe at nD/k"
               if ok else "FAILED")
    return Section("Storage costs across registers (k = f)", body, verdict)


def _channel_section() -> Section:
    setup = RegisterSetup(f=2, k=2, data_size_bytes=16)
    rows = []
    for c in (1, 4, 8):
        spec = WorkloadSpec(writers=c, writes_per_writer=1, readers=0, seed=3)
        result = run_register_workload(ChannelCodedRegister, setup, spec)
        rows.append([c, result.peak_bo_state_bits, result.peak_storage_bits])
    flat_nodes = len({row[1] for row in rows}) == 1
    growing_total = rows[-1][2] > rows[0][2]
    body = format_table(["c", "node bits", "Definition 2 bits"], rows)
    verdict = ("Section 3.2 reproduced: node storage flat, total cost "
               "grows — channels are charged"
               if flat_nodes and growing_total else "FAILED")
    return Section("Channel parking does not evade the bound", body, verdict)


def _sweep_section(workers: int = 1) -> Section:
    """A compact regime sweep with the literature overlay columns."""
    grid = SweepGrid.cartesian(
        registers=("abd", "coded-only", "adaptive"),
        fs=(1, 3),
        ks=(2, 4),
        cs=(1, 4, 8),
        data_sizes=(48,),
        seed=1,
    )
    result = run_sweep(grid, workers=workers)
    ok = not crossover_shape_violations(result)
    ok &= all(
        record.peak_bo_state_bits >= record.thm1_bits
        for record in result.records
        if record.register in ("coded-only", "adaptive")
    )
    verdict = (
        "Regime sweep reproduced: ABD flat, coded-only monotone in c, every "
        "regular register above the Theorem 1 overlay (bks18 = "
        "Berger-Keidar-Spiegelman, lrc = Cadambe-Mazumdar floor)"
        if ok else "FAILED"
    )
    return Section(
        "Crossover regimes with literature overlays", result.table(), verdict
    )


def _scenario_section(workers: int = 1) -> Section:
    """Crossover under crashes and shaped load: the bounds are adversarial,
    so they must keep holding when workloads churn, read-storm, and lose
    up to ``f`` base objects and clients mid-run."""
    grid = SweepGrid.cartesian(
        registers=("abd", "coded-only", "adaptive"),
        fs=(2,),
        ks=(2,),
        cs=(1, 2, 4),
        data_sizes=(48,),
        seed=2,
    )
    scenarios = (
        Scenario("uniform"),
        Scenario("churn+crash", pattern="churn", ops_per_client=2,
                 bo_crashes=1, client_crashes=1),
        Scenario("read-heavy", pattern="read-heavy", readers=4,
                 reads_per_reader=2),
    )
    result = run_sweep(grid, scenarios=scenarios, workers=workers)
    ok = not crossover_shape_violations(result)
    ok &= all(
        record.peak_bo_state_bits >= record.thm1_bits
        for record in result.records
        if record.register in ("coded-only", "adaptive")
    )
    crashed = result.select(scenario="churn+crash")
    ok &= all(r.bo_crashes == 1 and r.client_crashes == 1 for r in crashed)
    verdict = (
        "Scenario sweep reproduced: shapes and the Theorem 1 floor hold "
        "across uniform, churn-with-crashes, and read-heavy workloads "
        "(1 base object + 1 client killed per crash cell)"
        if ok else "FAILED"
    )
    return Section(
        "Crossover under crashes and shaped workloads", result.table(),
        verdict,
    )


def generate_report(workers: int = 1) -> str:
    """Run all report sections and render markdown.

    ``workers > 1`` fans the sweep sections' grid cells across a process
    pool; the rendered tables are identical to a serial run.
    """
    sections = [
        _theorem1_section(),
        _storage_section(),
        _channel_section(),
        _sweep_section(workers),
        _scenario_section(workers),
    ]
    header = (
        "# Reproduction report\n\n"
        "Paper: *Space Bounds for Reliable Storage: Fundamental Limits of "
        "Coding* (PODC 2016).\n\nGenerated by `python -m repro report`.\n"
    )
    return header + "\n" + "\n".join(section.render() for section in sections)


def report_ok(report: str) -> bool:
    return "FAILED" not in report
