"""Canonical bench summaries and the CI throughput-regression gate.

Every ``--quick`` benchmark step in CI writes a machine-readable summary
— ``benchmarks/results/BENCH_<name>.json`` — of the throughput numbers it
measured (actions/s, MB/s, wall-clock per sweep cell). A committed
baseline copy of each summary lives in ``benchmarks/baselines/``, and
``scripts/check_bench_regression.py`` compares the two after the bench
steps run: a metric that regressed by more than the threshold (default
40%) fails CI. The wide threshold absorbs runner-to-runner noise; a real
regression — an accidentally quadratic loop, a lost vectorized path —
moves throughput by integer factors and trips it loudly.

The summary schema is deliberately tiny::

    {
      "bench": "sim_throughput",
      "schema": 1,
      "quick": true,
      "backend": "numpy-nibble",
      "metrics": {
        "ledger_actions_per_s": {"value": 16000.0, "unit": "actions/s",
                                  "direction": "higher"}
      }
    }

``backend`` records the active GF(2^8) kernel
(:func:`repro.coding.backends.get_backend`) so every summary says which
kernel produced its numbers; the gate ignores it when comparing (older
baselines predate the key).

``direction`` declares which way is better: ``"higher"`` for throughput,
``"lower"`` for wall-clock. Regression is always judged as an implied
*throughput* ratio, so a ``lower`` metric regresses when
``baseline / current`` falls below ``1 - threshold`` — the same criterion
a ``higher`` metric applies to ``current / baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ParameterError

#: Summary document schema version.
BENCH_SCHEMA_VERSION = 1

#: Allowed metric directions: which way is *better*.
DIRECTIONS = ("higher", "lower")


def metric(
    value: float, unit: str, direction: str = "higher"
) -> dict[str, object]:
    """One gated measurement: value, display unit, better-direction."""
    if direction not in DIRECTIONS:
        raise ParameterError(
            f"metric direction must be one of {DIRECTIONS}, got "
            f"{direction!r}"
        )
    return {"value": float(value), "unit": unit, "direction": direction}


def bench_summary_path(results_dir: str | Path, name: str) -> Path:
    """The canonical location of bench ``name``'s summary file."""
    return Path(results_dir) / f"BENCH_{name}.json"


def write_bench_summary(
    name: str,
    metrics: dict[str, dict[str, object]],
    results_dir: str | Path,
    *,
    quick: bool,
) -> Path:
    """Write ``BENCH_<name>.json`` (canonical: sorted keys, 2-space indent).

    ``metrics`` maps metric names to :func:`metric` dicts. ``quick``
    records which mode produced the numbers — the gate refuses to compare
    a quick run against a full-mode baseline (their workloads differ, so
    the ratio would be meaningless). The active coding backend is stamped
    into the document for observability (never compared).
    """
    from repro.coding.backends import get_backend

    for metric_name, entry in metrics.items():
        if entry.get("direction") not in DIRECTIONS:
            raise ParameterError(
                f"metric {metric_name!r} missing a valid direction"
            )
    path = bench_summary_path(results_dir, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "bench": name,
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "backend": get_backend().name,
        "metrics": metrics,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_sweep_bench_summary(
    name: str, result, results_dir: str | Path, *, quick: bool
) -> Path:
    """Canonical summary of a sweep benchmark: cells/s + mean cell time.

    The shared writer behind ``bench_crossover.py`` and
    ``bench_scenario_sweep.py`` (same metric names, rounding, and
    directions — the committed baselines depend on them agreeing).
    Throughput derives from the per-record ``wall_clock_s`` (summed cell
    compute time), **not** the caller's elapsed wall-clock: resumed runs
    recompute only pending cells and pooled runs overlap cells, so an
    external timer would inflate the metric — journalled cells carry
    their original compute time instead.
    """
    records = getattr(result, "records", result)
    if not records:
        raise ParameterError("cannot summarise an empty sweep result")
    total_s = sum(record.wall_clock_s for record in records)
    if total_s <= 0:
        raise ParameterError("sweep records carry no wall-clock timing")
    return write_bench_summary(
        name,
        {
            "cells_per_s": metric(
                round(len(records) / total_s, 3), "cells/s"
            ),
            "mean_cell_wall_clock_s": metric(
                round(total_s / len(records), 6), "s", direction="lower"
            ),
        },
        results_dir,
        quick=quick,
    )


def load_bench_summary(path: str | Path) -> dict:
    """Load and validate one summary document."""
    document = json.loads(Path(path).read_text())
    if document.get("schema") != BENCH_SCHEMA_VERSION:
        raise ParameterError(
            f"{path}: unsupported bench summary schema "
            f"{document.get('schema')!r}"
        )
    if not isinstance(document.get("metrics"), dict):
        raise ParameterError(f"{path}: summary has no metrics table")
    return document


def throughput_ratio(
    baseline: dict[str, object], current: dict[str, object]
) -> float | None:
    """Current-over-baseline as an implied throughput ratio (1.0 = parity).

    ``None`` when the baseline value is zero (no meaningful ratio — the
    gate treats it as not comparable rather than dividing by zero).
    """
    base = float(baseline["value"])
    new = float(current["value"])
    if baseline["direction"] == "lower":
        return base / new if new else None
    return new / base if base else None


def compare_summaries(
    baseline: dict, current: dict, threshold: float = 0.40
) -> list[str]:
    """Gate one bench: return regression/problem messages (empty = pass).

    Fails when a baseline metric is missing from the current run, when
    the two summaries came from different modes, or when any metric's
    implied throughput ratio drops below ``1 - threshold``. Metrics
    present only in the current run are ignored — adding a measurement
    must not require regenerating every baseline.
    """
    if not 0 < threshold < 1:
        raise ParameterError("threshold must be in (0, 1)")
    problems: list[str] = []
    name = baseline.get("bench", "?")
    if current.get("bench") != name:
        return [
            f"{name}: current summary is for bench "
            f"{current.get('bench')!r}, not {name!r}"
        ]
    if current.get("quick") != baseline.get("quick"):
        return [
            f"{name}: mode mismatch (baseline quick="
            f"{baseline.get('quick')}, current quick="
            f"{current.get('quick')}) — workloads are not comparable"
        ]
    floor = 1.0 - threshold
    for metric_name, base_entry in baseline["metrics"].items():
        current_entry = current["metrics"].get(metric_name)
        if current_entry is None:
            problems.append(
                f"{name}.{metric_name}: metric missing from current run"
            )
            continue
        if current_entry.get("direction") != base_entry.get("direction"):
            problems.append(
                f"{name}.{metric_name}: direction changed "
                f"({base_entry.get('direction')} -> "
                f"{current_entry.get('direction')})"
            )
            continue
        ratio = throughput_ratio(base_entry, current_entry)
        if ratio is None:
            continue
        if ratio < floor:
            problems.append(
                f"{name}.{metric_name}: regressed to {ratio:.2f}x of "
                f"baseline ({base_entry['value']} -> "
                f"{current_entry['value']} {base_entry.get('unit', '')}; "
                f"gate: >= {floor:.2f}x)"
            )
    return problems
