"""Parallel sweep execution: pool fan-out, deterministic merge, resume.

:func:`repro.analysis.sweeps.run_sweep` executes every ``scenario x
grid-point`` cell serially in one process. Cells are fully independent
and seed-deterministic — each record is a pure function of its
``(scenario, point)`` cell plus the engine knobs — which makes the sweep
an ideal process-pool workload. This module is the multi-core superset:

* :func:`run_sweep` — the same signature plus ``workers``, ``checkpoint``
  and ``resume``. ``workers > 1`` partitions the cell list across a
  ``multiprocessing`` **spawn** pool (spawn, not fork: workers re-import
  the package and rebuild schemes, oracles and GF tables in their own
  process, so no simulator state is ever shared or inherited mid-run).
  Cells are dispatched in contiguous chunks to amortise pickling and
  startup, results stream back in completion order, and the merge reorders
  them into the serial cell order — so the resulting
  :class:`~repro.analysis.sweeps.SweepResult` is **byte-identical to the
  serial run for any worker count** once the per-record execution metadata
  (``wall_clock_s``, ``worker``, ``coding_backend``) is stripped:
  ``to_json(include_timing=False)`` compares equal across ``workers`` ∈
  {1, 2, 4, ...}, crash firing records and overlay curves included.

* checkpoint/resume — with ``checkpoint=path`` every completed cell is
  appended to a JSONL journal as it finishes (single writer: the parent
  process). An interrupted sweep — Ctrl-C, a CI timeout, a crash —
  resumes with ``resume=True`` without recomputing finished cells. The
  journal header pins a SHA-256 hash of the full cell list and engine
  knobs; resuming against a different grid, scenario set, or knob value
  raises :class:`~repro.errors.CheckpointError` instead of silently
  merging incompatible measurements. A truncated trailing line (the
  classic kill-mid-write artifact) is tolerated and recomputed; corruption
  anywhere else raises.

The cell runner itself lives in :mod:`repro.analysis.sweeps`
(:func:`~repro.analysis.sweeps.execute_cell`); this module only decides
*where* each cell runs and in what order results are stitched together.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.sweeps import (
    KeyspaceRecord,
    KeyspaceSweepResult,
    Scenario,
    SweepGrid,
    SweepPoint,
    SweepRecord,
    SweepResult,
    execute_cell,
    execute_keyspace_cell,
    normalize_scenarios,
    sweep_cells,
)
from repro.coding import backends as coding_backends
from repro.errors import CheckpointError, ParameterError

#: Journal file format version (independent of the sweep JSON schema).
JOURNAL_VERSION = 1

#: Magic string identifying a sweep journal header line.
JOURNAL_MAGIC = "repro-sweep-journal"


# ------------------------------------------------------------ cell hashing


def sweep_signature(
    cells: Sequence[tuple[Scenario, SweepPoint]],
    *,
    max_steps: int,
    lrc_locality: int,
    audit_storage_every: int,
) -> str:
    """SHA-256 over the full cell list and every knob that shapes records.

    Two sweep invocations share a signature iff they would produce the
    same measurement payloads cell-for-cell — the validity criterion for
    merging a journal's cells into a later run. Execution-only knobs
    (worker count, chunking, progress hooks) are deliberately excluded.
    """
    payload = {
        "cells": [
            [asdict(scenario), asdict(point)] for scenario, point in cells
        ],
        "max_steps": max_steps,
        "lrc_locality": lrc_locality,
        "audit_storage_every": audit_storage_every,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------- journal


class SweepJournal:
    """Append-only JSONL checkpoint of completed sweep cells.

    Line 0 is a header pinning the sweep signature and cell count; every
    further line is one completed cell: ``{"cell": index, "record":
    {...}}`` with ``index`` the cell's position in the serial
    :func:`~repro.analysis.sweeps.sweep_cells` order. The parent process
    is the only writer, so the file needs no locking; each line is
    flushed as it is written, so the worst interruption artifact is one
    truncated trailing line — which :meth:`load` tolerates (that cell is
    simply recomputed). Everything else that does not parse, or that
    belongs to a different sweep, raises
    :class:`~repro.errors.CheckpointError`.
    """

    def __init__(self, path: str | Path, signature: str, total_cells: int):
        self.path = Path(path)
        self.signature = signature
        self.total_cells = total_cells
        self._handle = None

    # ------------------------------------------------------------- reading

    def load(self) -> dict[int, SweepRecord]:
        """Completed cells from an existing journal, validated.

        Returns ``{}`` when the journal does not exist yet. Raises
        :class:`~repro.errors.CheckpointError` when the header is missing
        or pins a different sweep (grid, scenarios, or engine knobs), when
        a cell index falls outside the grid, or when any line other than
        the final one is malformed.
        """
        if not self.path.exists():
            return {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return {}
        header = self._parse_line(lines[0], line_number=1)
        if header is None or header.get("journal") != JOURNAL_MAGIC:
            raise CheckpointError(
                f"{self.path}: not a sweep journal (missing header)"
            )
        if header.get("journal_version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"{self.path}: unsupported journal version "
                f"{header.get('journal_version')!r}"
            )
        if header.get("signature") != self.signature:
            raise CheckpointError(
                f"{self.path}: journal was written for a different sweep "
                f"(signature {header.get('signature')!r} != "
                f"{self.signature!r}); refusing to merge its cells"
            )
        if header.get("total_cells") != self.total_cells:
            raise CheckpointError(
                f"{self.path}: journal covers {header.get('total_cells')!r} "
                f"cells, this sweep has {self.total_cells}"
            )
        done: dict[int, SweepRecord] = {}
        for number, line in enumerate(lines[1:], start=2):
            entry = self._parse_line(
                line, line_number=number, tolerate=(number == len(lines))
            )
            if entry is None:  # tolerated truncated trailing line
                continue
            try:
                index = entry["cell"]
                record = SweepRecord(**entry["record"])
            except (KeyError, TypeError) as error:
                raise CheckpointError(
                    f"{self.path}:{number}: malformed journal entry: {error}"
                ) from error
            if not 0 <= index < self.total_cells:
                raise CheckpointError(
                    f"{self.path}:{number}: cell index {index} outside the "
                    f"sweep's {self.total_cells} cells"
                )
            done[index] = record
        return done

    def _parse_line(
        self, line: str, *, line_number: int, tolerate: bool = False
    ) -> dict | None:
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError as error:
            if tolerate:
                return None
            raise CheckpointError(
                f"{self.path}:{line_number}: corrupt journal line: {error}"
            ) from error
        if not isinstance(parsed, dict):
            raise CheckpointError(
                f"{self.path}:{line_number}: journal line is not an object"
            )
        return parsed

    # ------------------------------------------------------------- writing

    def open_for_append(self, fresh: bool) -> None:
        """Open the journal for appending; write the header when fresh.

        When appending to an existing journal, a truncated trailing line
        (tolerated by :meth:`load`) is trimmed back to the last complete
        line first — appending straight after the partial text would fuse
        two entries into one permanently corrupt line, breaking every
        later resume.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists() and self.path.stat().st_size > 0
        if existed and not fresh:
            text = self.path.read_text()
            if not text.endswith("\n"):
                text = text[: text.rfind("\n") + 1]
                self.path.write_text(text)
                existed = bool(text)  # rewrite the header if nothing left
        self._handle = open(self.path, "w" if fresh else "a")
        if fresh or not existed:
            self._write_line({
                "journal": JOURNAL_MAGIC,
                "journal_version": JOURNAL_VERSION,
                "signature": self.signature,
                "total_cells": self.total_cells,
            })

    def append(self, index: int, record: SweepRecord) -> None:
        """Persist one completed cell (flushed immediately)."""
        self._write_line({"cell": index, "record": asdict(record)})

    def _write_line(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ------------------------------------------------------------ worker side


def _worker_number() -> int:
    """This pool worker's 1-based number (0 outside a pool).

    Pool workers are named ``SpawnPoolWorker-<n>``; the trailing integer
    is stable for the life of the pool and lands in
    :attr:`SweepRecord.worker` as execution metadata.
    """
    name = multiprocessing.current_process().name
    digits = name.rsplit("-", 1)[-1]
    return int(digits) if digits.isdigit() else 0


def _run_chunk(
    payload: tuple[list[int], list[tuple[Scenario, SweepPoint]], dict],
) -> list[tuple[int, SweepRecord]]:
    """Pool entrypoint: run one contiguous chunk of cells.

    Executed in a spawned worker process, so ``repro`` (schemes, oracles,
    GF tables) is freshly imported and rebuilt per process — nothing is
    inherited from the parent. Must stay a module-level function: spawn
    pickles it by qualified name.
    """
    indices, chunk_cells, kwargs = payload
    worker = _worker_number()
    return [
        (index, execute_cell(scenario, point, worker=worker, **kwargs))
        for index, (scenario, point) in zip(indices, chunk_cells)
    ]


# ----------------------------------------------------------------- engine


def _chunked(pending: list[int], chunk_size: int) -> list[list[int]]:
    return [
        pending[start:start + chunk_size]
        for start in range(0, len(pending), chunk_size)
    ]


def default_chunk_size(pending: int, workers: int) -> int:
    """Contiguous cells per pool task: ~4 tasks per worker, capped at 32.

    Large enough to amortise pickling/dispatch overhead per task, small
    enough that a pool keeps all workers busy when cell costs are skewed
    (large-``c`` cells can dominate small ones by orders of magnitude).
    """
    if pending <= 0 or workers <= 1:
        return max(1, pending)
    return max(1, min(32, -(-pending // (workers * 4))))


def run_sweep(
    grid: SweepGrid,
    *,
    scenarios: Sequence[Scenario] | None = None,
    writes_per_writer: int = 1,
    readers: int = 0,
    max_steps: int = 400_000,
    lrc_locality: int = 2,
    audit_storage_every: int = 0,
    progress: Callable[[int, int, SweepPoint], None] | None = None,
    workers: int = 1,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    chunk_size: int | None = None,
    coding_backend: str | None = None,
) -> SweepResult:
    """Execute every ``scenario x grid-point`` cell, optionally in parallel.

    A drop-in superset of :func:`repro.analysis.sweeps.run_sweep`:

    * ``workers`` — pool size. ``1`` (the default) runs in-process and is
      behaviourally identical to the serial engine. ``N > 1`` fans the
      cell list out across an ``N``-process spawn pool; the merged result
      is byte-identical to the serial run under
      ``to_json(include_timing=False)`` for any ``N``.
    * ``checkpoint`` — JSONL journal path. Completed cells stream to it;
      pass ``resume=True`` to load previously completed cells instead of
      recomputing them. A journal written for a different sweep
      (different cells, scenarios, or engine knobs) raises
      :class:`~repro.errors.CheckpointError`. Without ``resume``, an
      existing non-empty checkpoint also raises — an append-only journal
      is never silently overwritten.
    * ``chunk_size`` — cells per pool task (default:
      :func:`default_chunk_size`).
    * ``coding_backend`` — GF kernel name for every cell (defaults to the
      process's active backend). Spawn workers re-import ``repro`` and
      would otherwise fall back to the default backend, so the resolved
      *name* travels in the pickled chunk payload and each worker
      re-resolves it via ``use_backend``. Backends are byte-identical, so
      this is an execution knob like ``workers`` — deliberately excluded
      from the checkpoint signature.

    ``progress`` is called as ``progress(done, total, point)`` after each
    cell completes — in completion order, which under a pool is not the
    cell order (the merged result always is).
    """
    if workers < 1:
        raise ParameterError("workers must be >= 1")
    scenario_tuple = normalize_scenarios(scenarios, writes_per_writer,
                                         readers)
    cells = sweep_cells(grid, scenario_tuple)
    backend_name = (
        coding_backends.use_backend(coding_backend).name
        if coding_backend is not None
        else coding_backends.get_backend().name
    )
    knobs = dict(
        max_steps=max_steps,
        lrc_locality=lrc_locality,
        audit_storage_every=audit_storage_every,
    )
    signature = sweep_signature(cells, **knobs)
    kwargs = dict(knobs, coding_backend=backend_name)

    journal = None
    done: dict[int, SweepRecord] = {}
    if checkpoint is not None:
        journal = SweepJournal(checkpoint, signature, len(cells))
        if resume:
            done = journal.load()
        elif journal.path.exists() and journal.path.stat().st_size > 0:
            raise CheckpointError(
                f"{journal.path}: checkpoint exists; pass resume=True to "
                "continue it or delete the file to start over"
            )
        journal.open_for_append(fresh=not resume)

    pending = [index for index in range(len(cells)) if index not in done]
    completed = len(done)

    def finish(index: int, record: SweepRecord) -> None:
        nonlocal completed
        done[index] = record
        completed += 1
        if journal is not None:
            journal.append(index, record)
        if progress is not None:
            progress(completed, len(cells), cells[index][1])

    try:
        if workers == 1 or len(pending) <= 1:
            for index in pending:
                scenario, point = cells[index]
                finish(index, execute_cell(scenario, point, **kwargs))
        else:
            size = chunk_size or default_chunk_size(len(pending), workers)
            payloads = [
                (chunk, [cells[index] for index in chunk], kwargs)
                for chunk in _chunked(pending, size)
            ]
            context = multiprocessing.get_context("spawn")
            pool_size = min(workers, len(payloads))
            with context.Pool(processes=pool_size) as pool:
                for batch in pool.imap_unordered(_run_chunk, payloads):
                    for index, record in batch:
                        finish(index, record)
    finally:
        if journal is not None:
            journal.close()

    return SweepResult([done[index] for index in range(len(cells))])


# ------------------------------------------------------- keyspace sweeps


def _run_keyspace_chunk(
    payload: tuple[list[int], list, dict],
) -> list[tuple[int, KeyspaceRecord]]:
    """Pool entrypoint: run one contiguous chunk of keyspace cells.

    The keyspace twin of :func:`_run_chunk` — same spawn semantics, same
    module-level pickling requirement.
    """
    indices, chunk_cells, kwargs = payload
    worker = _worker_number()
    return [
        (index, execute_keyspace_cell(spec, worker=worker, **kwargs))
        for index, spec in zip(indices, chunk_cells)
    ]


def run_keyspace_sweep(
    cells: Sequence,
    *,
    max_steps: int = 400_000,
    audit_storage_every: int = 0,
    progress: Callable[[int, int], None] | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    coding_backend: str | None = None,
) -> KeyspaceSweepResult:
    """Execute keyspace cells, optionally across a spawn pool.

    A drop-in superset of
    :func:`repro.analysis.sweeps.run_keyspace_sweep`: keyspace cells are
    pure functions of their spec (sampling is SHA-256-derived, the ring
    is deterministic), so the pooled merge is byte-identical to the
    serial run under ``to_json(include_timing=False)`` for any worker
    count — the same contract as the register-sweep executor. Keyspace
    grids are small (a handful of heavy cells), so there is no
    checkpoint journal; an interrupted sweep just reruns.

    ``coding_backend`` works exactly as on :func:`run_sweep`: the
    resolved name rides the pickled payload so spawn workers re-activate
    the parent's kernel choice.
    """
    if workers < 1:
        raise ParameterError("workers must be >= 1")
    cells = list(cells)
    backend_name = (
        coding_backends.use_backend(coding_backend).name
        if coding_backend is not None
        else coding_backends.get_backend().name
    )
    kwargs = dict(
        max_steps=max_steps, audit_storage_every=audit_storage_every,
        coding_backend=backend_name,
    )
    done: dict[int, KeyspaceRecord] = {}
    completed = 0

    def finish(index: int, record: KeyspaceRecord) -> None:
        nonlocal completed
        done[index] = record
        completed += 1
        if progress is not None:
            progress(completed, len(cells))

    if workers == 1 or len(cells) <= 1:
        for index, spec in enumerate(cells):
            finish(index, execute_keyspace_cell(spec, **kwargs))
    else:
        size = chunk_size or default_chunk_size(len(cells), workers)
        chunks = _chunked(list(range(len(cells))), size)
        payloads = [
            (chunk, [cells[index] for index in chunk], kwargs)
            for chunk in chunks
        ]
        context = multiprocessing.get_context("spawn")
        pool_size = min(workers, len(payloads))
        with context.Pool(processes=pool_size) as pool:
            for batch in pool.imap_unordered(_run_keyspace_chunk, payloads):
                for index, record in batch:
                    finish(index, record)
    return KeyspaceSweepResult([done[index] for index in range(len(cells))])
