"""Plain-text tables and unit helpers for the benchmark harness.

The paper reports closed-form storage costs; the benchmarks print measured
values next to those formulas. These helpers keep that output aligned and
consistent across benches and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


def format_bits(bits: int) -> str:
    """Human-readable bit count (keeps exact value for small numbers)."""
    if bits < 8 * 1024:
        return f"{bits}b"
    kib = bits / 8 / 1024
    if kib < 1024:
        return f"{kib:.1f}KiB"
    return f"{kib / 1024:.2f}MiB"


def format_ratio(measured: float, predicted: float) -> str:
    """Measured/predicted ratio, guarded against a zero prediction."""
    if predicted == 0:
        return "n/a"
    return f"{measured / predicted:.2f}x"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in materialised)
    return "\n".join(body)


@dataclass
class SeriesPoint:
    """One (x, measured, predicted) sample of an experiment sweep."""

    x: float
    measured: float
    predicted: float

    @property
    def ratio(self) -> float:
        return self.measured / self.predicted if self.predicted else float("inf")


def monotone_nondecreasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when the sequence never drops by more than ``slack`` (relative)."""
    for earlier, later in zip(values, values[1:]):
        if later < earlier * (1.0 - slack):
            return False
    return True


def flat_within(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when the sequence varies by at most ``slack`` (relative).

    ``slack = 0`` demands exact flatness; the failure-adapted crossover
    checks pass the fraction of a peak a fired crash can hide.
    """
    if not values:
        return True
    return max(values) <= min(values) * (1.0 + slack)


def linear_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope — used to confirm O(c) growth shapes."""
    count = len(xs)
    if count < 2:
        raise ValueError("need at least two points for a slope")
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    return numerator / denominator
