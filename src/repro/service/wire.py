"""JSON wire codec for protocol payloads.

The protocol machines exchange plain tuples carrying
:class:`~repro.registers.timestamps.Timestamp` and
:class:`~repro.coding.oracles.CodeBlock` values. On the simulated network
those objects travel by reference; over TCP they must survive a byte
round-trip **losslessly** — a decoded timestamp must still compare with
``>`` against a local one, a decoded block must still carry its source tag
and bit size for the storage ledger.

The encoding is tagged JSON: every non-JSON-native value becomes an
object with a ``"!"`` discriminator (``ts`` / ``block`` / ``bytes``), and
every JSON array decodes back to a *tuple* — protocol payloads and
request ids are tuples, and quorum rounds compare request ids by
equality, so sequence type must be preserved. Unknown tags raise
:class:`~repro.errors.WireError` rather than leaking foreign objects into
protocol state.
"""

from __future__ import annotations

import base64
import json
from typing import Any

from repro.coding.oracles import BlockSource, CodeBlock
from repro.errors import WireError
from repro.registers.timestamps import Timestamp

#: Discriminator key for tagged objects. Short on purpose: every write
#: message carries a full replica block, so framing overhead is real.
TAG = "!"


def to_wire(value: Any) -> Any:
    """Lower one payload value to JSON-dumpable form."""
    if isinstance(value, Timestamp):
        return {TAG: "ts", "n": value.num, "c": value.client}
    if isinstance(value, CodeBlock):
        return {
            TAG: "block",
            "p": base64.b64encode(value.payload).decode("ascii"),
            "i": value.index,
            "op": value.source.op_uid,
            "si": value.source.index,
            "b": value.size_bits,
        }
    if isinstance(value, (bytes, bytearray)):
        return {TAG: "bytes", "b64": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (tuple, list)):
        return [to_wire(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise WireError(f"cannot encode {type(value).__name__} on the wire")


def from_wire(value: Any) -> Any:
    """Raise one decoded JSON value back to its protocol form."""
    if isinstance(value, list):
        return tuple(from_wire(item) for item in value)
    if isinstance(value, dict):
        tag = value.get(TAG)
        if tag == "ts":
            return Timestamp(value["n"], value["c"])
        if tag == "block":
            return CodeBlock(
                payload=base64.b64decode(value["p"]),
                index=value["i"],
                source=BlockSource(value["op"], value["si"]),
                size_bits=value["b"],
            )
        if tag == "bytes":
            return base64.b64decode(value["b64"])
        raise WireError(f"unknown wire tag {tag!r}")
    return value


def encode_payload(payload: tuple) -> bytes:
    """One protocol payload -> compact JSON bytes."""
    return json.dumps(
        to_wire(payload), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_payload(data: bytes) -> tuple:
    """JSON bytes -> protocol payload tuple (:class:`WireError` on junk)."""
    try:
        decoded = from_wire(json.loads(data.decode("utf-8")))
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
            TypeError, ValueError) as error:
        raise WireError(f"undecodable wire payload: {error}") from error
    if not isinstance(decoded, tuple):
        raise WireError(
            f"wire payload is {type(decoded).__name__}, expected tuple"
        )
    return decoded
