"""Daemon lifecycle: spawn, stop, revive, inspect a replica cluster.

``repro serve`` turns one state directory into a running cluster of
``n = 2f + 1`` replica server *processes* (detached sessions, logs in the
state dir); ``repro stop`` drains them with SIGTERM; ``repro status``
asks every replica for its timestamp and replica bits and renders the
Definition-2 / Theorem-1 view; ``repro doctor`` runs the health checks.
This module is the library behind those subcommands — the CLI layer in
:mod:`repro.cli` only parses arguments and formats tables.

Lifecycle invariants:

* **Readiness is file-based.** A server writes its pid/port files only
  once its listener is up; :func:`start_cluster` polls for them and fails
  loudly (with the server's log tail) if a child dies first.
* **Double start fails cleanly.** A state dir with any live pid raises
  :class:`~repro.errors.AlreadyRunningError` (exit
  :data:`EXIT_ALREADY_RUNNING`); a fully dead state dir restarts over its
  journals — that *is* the crash-recovery path.
* **Stop is graceful, then firm.** SIGTERM, wait up to the drain budget,
  then SIGKILL stragglers (reported). Stopping a never-started or
  already-stopped dir raises :class:`~repro.errors.NotRunningError`
  (exit :data:`EXIT_NOT_RUNNING`).
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.coding.replication import ReplicationCode
from repro.errors import (
    AlreadyRunningError,
    DaemonError,
    JournalError,
    NotRunningError,
    ParameterError,
)
from repro.msgnet import protocol
from repro.service.client import probe
from repro.service.journal import ReplicaJournal, replica_signature
from repro.service.ledger import LiveStorageView, ReplicaStatus
from repro.service.statedir import StateDir, pid_alive

EXIT_OK = 0
EXIT_FAIL = 1
EXIT_ALREADY_RUNNING = 3
EXIT_NOT_RUNNING = 4
#: Quorum still answers, but some replicas are down or unreachable —
#: alive-but-wounded, distinct from both healthy (0) and broken (1) so
#: scripts can page on real outages only.
EXIT_DEGRADED = 5

#: Status probes per replica before declaring it unreachable (the first
#: try plus this many retries).
PROBE_RETRIES = 1

#: How long `repro serve` waits for every child to publish its port file.
READY_TIMEOUT_S = 15.0

#: How long `repro stop` waits for a SIGTERMed server to drain and exit.
STOP_TIMEOUT_S = 10.0

#: Admin request id — any equality-comparable value works; this one is
#: recognizable in logs and can never collide with a client op's
#: ``(op_uid, phase)`` integers.
_ADMIN_RID = ("admin", 0)


def _spawn_env() -> dict[str, str]:
    """Child env with the repro package importable (PYTHONPATH pinned)."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


def _spawn_server(
    state: StateDir, *, name: str, index: int, f: int,
    data_size_bytes: int, host: str, port: int,
) -> int:
    """Start one replica process; returns its pid."""
    state.root.mkdir(parents=True, exist_ok=True)
    state.clear_runtime_files(name)
    command = [
        sys.executable, "-m", "repro", "server",
        "--name", name, "--index", str(index), "--f", str(f),
        "--data-size", str(data_size_bytes),
        "--state-dir", str(state.root),
        "--host", host, "--port", str(port),
    ]
    with open(state.log_path(name), "a") as log:
        process = subprocess.Popen(
            command, stdout=log, stderr=log,
            start_new_session=True, env=_spawn_env(),
        )
    return process.pid

def _wait_ready(state: StateDir, names: list[str],
                timeout: float = READY_TIMEOUT_S) -> None:
    """Block until every named server published pid+port, or die loudly."""
    deadline = time.monotonic() + timeout
    pending = set(names)
    while pending:
        for name in sorted(pending):
            if state.read_port(name) is not None and state.server_alive(name):
                pending.discard(name)
                break
            pid = state.read_pid(name)
            if pid is not None and not pid_alive(pid):
                raise DaemonError(
                    f"server {name} exited during startup; log tail:\n"
                    + _log_tail(state, name)
                )
        if pending:
            if time.monotonic() > deadline:
                raise DaemonError(
                    f"servers {sorted(pending)} not ready after "
                    f"{timeout:.0f}s; log tail:\n"
                    + _log_tail(state, sorted(pending)[0])
                )
            time.sleep(0.05)


def _log_tail(state: StateDir, name: str, lines: int = 10) -> str:
    path = state.log_path(name)
    if not path.exists():
        return "(no log)"
    return "\n".join(path.read_text().splitlines()[-lines:]) or "(empty log)"


# ----------------------------------------------------------------- start


def start_cluster(
    state_dir: str | Path,
    *,
    f: int,
    data_size_bytes: int,
    host: str = "127.0.0.1",
    port_base: int = 0,
    ready_timeout: float = READY_TIMEOUT_S,
) -> dict:
    """Spawn ``2f + 1`` replica processes; returns the written meta.

    Raises :class:`AlreadyRunningError` when the state dir already hosts
    a live server. A state dir whose servers are all dead is restarted
    over its journals (crash recovery).
    """
    state = StateDir(state_dir)
    if state.exists() and state.live_servers():
        raise AlreadyRunningError(
            f"{state.root}: cluster already running "
            f"(live: {', '.join(state.live_servers())}); "
            "use `repro stop` first"
        )
    n = 2 * f + 1
    names = [f"s{index}" for index in range(n)]
    servers = []
    for index, name in enumerate(names):
        port = 0 if port_base == 0 else port_base + index
        pid = _spawn_server(
            state, name=name, index=index, f=f,
            data_size_bytes=data_size_bytes, host=host, port=port,
        )
        servers.append({"name": name, "index": index, "spawn_pid": pid})
    meta = {
        "f": f,
        "data_size_bytes": data_size_bytes,
        "host": host,
        "port_base": port_base,
        "servers": servers,
    }
    state.write_meta(meta)
    _wait_ready(state, names, timeout=ready_timeout)
    return meta


def restart_dead(
    state_dir: str | Path, ready_timeout: float = READY_TIMEOUT_S
) -> list[str]:
    """Re-spawn every dead server of an existing cluster (journal recovery).

    Live servers are untouched. Returns the revived names (possibly
    empty). The cluster configuration comes from ``meta.json``.
    """
    state = StateDir(state_dir)
    meta = state.read_meta()
    revived = []
    for server in meta["servers"]:
        name = server["name"]
        if state.server_alive(name):
            continue
        port = (0 if meta["port_base"] == 0
                else meta["port_base"] + server["index"])
        _spawn_server(
            state, name=name, index=server["index"], f=meta["f"],
            data_size_bytes=meta["data_size_bytes"],
            host=meta["host"], port=port,
        )
        revived.append(name)
    if revived:
        _wait_ready(state, revived, timeout=ready_timeout)
    return revived


# ------------------------------------------------------------------ stop


def stop_cluster(
    state_dir: str | Path, timeout: float = STOP_TIMEOUT_S
) -> list[tuple[str, int, str]]:
    """SIGTERM every live server and wait for the drain.

    Returns ``[(name, pid, outcome)]`` with outcome ``"stopped"`` or
    ``"killed"`` (SIGKILL after the timeout). Raises
    :class:`NotRunningError` when nothing is running.
    """
    state = StateDir(state_dir)
    if not state.exists():
        raise NotRunningError(
            f"{state.root}: no cluster was ever started here"
        )
    live = state.live_servers()
    if not live:
        raise NotRunningError(f"{state.root}: cluster is not running")
    report = []
    pids = {name: state.read_pid(name) for name in live}
    for name in live:
        os.kill(pids[name], signal.SIGTERM)
    deadline = time.monotonic() + timeout
    for name in live:
        pid = pids[name]
        while pid_alive(pid) and time.monotonic() < deadline:
            time.sleep(0.02)
        if pid_alive(pid):
            os.kill(pid, signal.SIGKILL)
            report.append((name, pid, "killed"))
        else:
            report.append((name, pid, "stopped"))
    return report


# ---------------------------------------------------------------- status


async def _collect_statuses(
    state: StateDir, meta: dict, timeout: float,
    probe_retries: int = PROBE_RETRIES,
) -> list[ReplicaStatus]:
    statuses = []
    for server in meta["servers"]:
        name = server["name"]
        pid = state.read_pid(name)
        port = state.read_port(name)
        alive = state.server_alive(name)
        status = ReplicaStatus(name=name, alive=False, pid=pid, port=port)
        if alive and port is not None:
            attempts = 0
            for attempt in range(1, probe_retries + 2):
                attempts = attempt
                reply = await probe(
                    meta["host"], port,
                    (protocol.STATUS, _ADMIN_RID), protocol.REPLY_STATUS,
                    timeout=timeout,
                )
                if reply is not None:
                    _tag, _rid, ts, replica_bits, applied = reply
                    status = ReplicaStatus(
                        name=name, alive=True, ts=ts,
                        replica_bits=replica_bits, applied_count=applied,
                        pid=pid, port=port, probe_attempts=attempt,
                        last_seen=time.time(),
                    )
                    break
            else:
                status.probe_attempts = attempts
        statuses.append(status)
    return statuses


def fault_plan_summary(state_dir: str | Path) -> str | None:
    """One-line description of the installed fault plan, if any.

    ``None`` when the state dir carries no ``faults.json`` (a clean
    cluster); a ``corrupt: ...`` string when the file exists but does not
    parse — status/doctor must report a half-written plan, not hide it.
    """
    state = StateDir(state_dir)
    path = state.faults_path
    if not path.exists():
        return None
    from repro.errors import FaultPlanError
    from repro.faults.plan import FaultPlan

    try:
        return FaultPlan.load(path).describe()
    except FaultPlanError as error:
        return f"corrupt: {error}"


def cluster_status(
    state_dir: str | Path, timeout: float = 2.0
) -> tuple[dict, LiveStorageView]:
    """Probe every replica; returns ``(meta, LiveStorageView)``.

    Raises :class:`NotRunningError` when the state dir has no meta or no
    live server at all.
    """
    state = StateDir(state_dir)
    meta = state.read_meta()
    if not state.live_servers():
        raise NotRunningError(f"{state.root}: cluster is not running")
    statuses = asyncio.run(_collect_statuses(state, meta, timeout))
    view = LiveStorageView(meta["f"], meta["data_size_bytes"], statuses)
    return meta, view


# ---------------------------------------------------------------- doctor


def run_doctor(
    state_dir: str | Path, timeout: float = 2.0
) -> list[tuple[str, bool, str]]:
    """Health checks: ``[(check name, ok, detail)]`` — all must pass.

    Never raises for an unhealthy cluster; the checks *are* the report.
    """
    state = StateDir(state_dir)
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str) -> bool:
        checks.append((name, ok, detail))
        return ok

    # First so it always renders, cluster or no cluster: which GF kernel
    # this process (and any server it spawns) would encode with. Fails
    # only when REPRO_CODING_BACKEND names an unregistered backend.
    try:
        from repro.coding import backends as coding_backends

        check(
            "coding backend", True,
            f"{coding_backends.get_backend().name} (available: "
            f"{', '.join(coding_backends.available_backends())})",
        )
    except ParameterError as error:
        check("coding backend", False, str(error))

    if not check("state dir", state.root.is_dir(), str(state.root)):
        return checks
    try:
        meta = state.read_meta()
    except DaemonError as error:
        check("meta.json", False, str(error))
        return checks
    n = 2 * meta["f"] + 1
    check("meta.json", True,
          f"f={meta['f']} n={n} D={meta['data_size_bytes'] * 8} bits")

    live = [s["name"] for s in meta["servers"]
            if state.server_alive(s["name"])]
    down = [s["name"] for s in meta["servers"] if s["name"] not in live]
    check("processes", not down,
          f"{len(live)}/{n} alive"
          + (f" (down: {', '.join(down)})" if down else ""))

    statuses = asyncio.run(_collect_statuses(state, meta, timeout))
    view = LiveStorageView(meta["f"], meta["data_size_bytes"], statuses)
    reachable = [s.name for s in statuses if s.alive]
    retried = [
        f"{s.name}:{s.probe_attempts}x" for s in statuses
        if s.probe_attempts > 1
    ]
    check("ports", len(reachable) == len(live),
          f"{len(reachable)}/{len(live)} live servers answer status RPCs"
          + (f" (retried: {', '.join(retried)})" if retried else ""))
    check("quorum", view.quorum_available,
          f"{view.alive_count} alive, majority needs {view.majority}")

    faults = fault_plan_summary(state_dir)
    check("fault plan", faults is None or not faults.startswith("corrupt:"),
          faults if faults is not None else "none installed")

    journal_problems = []
    for server in meta["servers"]:
        name = server["name"]
        signature = replica_signature(
            name, server["index"], meta["f"], meta["data_size_bytes"],
            ReplicationCode.name,
        )
        try:
            ReplicaJournal(state.journal_path(name), signature).load()
        except JournalError as error:
            journal_problems.append(f"{name}: {error}")
    check("journals", not journal_problems,
          "; ".join(journal_problems) or
          f"{len(meta['servers'])} journals load cleanly")

    check("timestamps", view.timestamp_consistent(),
          f"max ts = {view.max_ts}")
    check(
        "storage (Def. 2)",
        view.meets_thm1_floor or view.alive_count == 0,
        f"{view.server_storage_bits} bits at rest >= thm1 floor "
        f"{view.thm1_floor_bits()} bits",
    )
    return checks


#: Doctor checks whose failure means "wounded, not dead" while a quorum
#: still answers — dead or unreachable minority replicas.
_DEGRADED_CHECKS = {"processes", "ports"}


def doctor_exit_code(checks: list[tuple[str, bool, str]]) -> int:
    """Three-way doctor verdict: healthy / degraded-but-alive / broken.

    :data:`EXIT_DEGRADED` when every failing check is a minority-replica
    liveness problem and the quorum check passed — the cluster serves,
    but with less than full redundancy.
    """
    failed = {name for name, ok, _detail in checks if not ok}
    if not failed:
        return EXIT_OK
    quorum_ok = any(
        name == "quorum" and ok for name, ok, _detail in checks
    )
    if quorum_ok and failed <= _DEGRADED_CHECKS:
        return EXIT_DEGRADED
    return EXIT_FAIL
