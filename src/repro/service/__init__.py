"""The networked storage service: ABD over real asyncio TCP sockets.

This package is the production incarnation of the message-passing model:
``n = 2f + 1`` replica server processes (:mod:`repro.service.server`),
an async client library with timeouts and bounded retry
(:mod:`repro.service.client`), and a daemon lifecycle — pidfiles, state
dir, graceful SIGTERM drain, crash recovery from an append-only journal
(:mod:`repro.service.daemon`, :mod:`repro.service.journal`) — exposed as
the ``repro serve`` / ``status`` / ``stop`` / ``doctor`` CLI.

The protocol layer is **not** here: servers and clients drive the exact
same state machines as the simulated network
(:mod:`repro.msgnet.protocol`), so the storage profile and consistency
level measured in the simulator are statements about this live system
too. :class:`~repro.service.ledger.LiveStorageView` carries the
Definition-2 accounting over: ``repro status`` reports at-rest replica
bits against the Theorem 1 floor.
"""

from repro.service.client import ServiceClient, merge_histories
from repro.service.daemon import (
    EXIT_ALREADY_RUNNING,
    EXIT_DEGRADED,
    EXIT_FAIL,
    EXIT_NOT_RUNNING,
    EXIT_OK,
    StateDir,
    cluster_status,
    doctor_exit_code,
    fault_plan_summary,
    restart_dead,
    run_doctor,
    start_cluster,
    stop_cluster,
)
from repro.service.journal import ReplicaJournal, replica_signature
from repro.service.ledger import LiveStorageView, ReplicaStatus
from repro.service.loopback import LoopbackCluster
from repro.service.retry import BackoffPolicy, HealthTracker, RetryStats
from repro.service.server import ReplicaServer, ServerConfig

__all__ = [
    "BackoffPolicy",
    "EXIT_ALREADY_RUNNING",
    "EXIT_DEGRADED",
    "EXIT_FAIL",
    "EXIT_NOT_RUNNING",
    "EXIT_OK",
    "HealthTracker",
    "LiveStorageView",
    "LoopbackCluster",
    "ReplicaJournal",
    "ReplicaServer",
    "ReplicaStatus",
    "RetryStats",
    "ServerConfig",
    "ServiceClient",
    "StateDir",
    "cluster_status",
    "doctor_exit_code",
    "fault_plan_summary",
    "merge_histories",
    "replica_signature",
    "restart_dead",
    "run_doctor",
    "start_cluster",
    "stop_cluster",
]
