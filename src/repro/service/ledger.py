"""Definition-2 storage accounting over live server replicas.

The simulated kernel meters storage incrementally with
:class:`~repro.storage.cost.StorageLedger`; the live service cannot hook
a kernel, but the at-rest half of Definition 2 — replica bits at live
servers — is directly observable through the ``status`` RPC every
replica answers. :class:`LiveStorageView` aggregates those replies into
the same quantities the simulator reports (``server_storage_bits`` is
the bo-state analogue, exactly like
:meth:`~repro.msgnet.abd.MsgABDSystem.server_storage_bits`) and compares
them against the Theorem 1 floor, so ``repro status`` states the paper's
bound about the running system.

In-flight bits (the channel charge) are a simulator-only measurement:
TCP buffers are outside the model's observation points, which is fine —
Definition 2's peak is dominated by at-rest replicas for ABD, and the
loopback bench cross-checks the at-rest number against the simulated
deployment at equal ``(f, D)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweeps import theorem1_bound_bits
from repro.registers.timestamps import Timestamp


@dataclass
class ReplicaStatus:
    """One server's ``status`` reply (or its absence)."""

    name: str
    alive: bool
    ts: Timestamp | None = None
    replica_bits: int = 0
    applied_count: int = 0
    pid: int | None = None
    port: int | None = None
    #: Status probes sent before this reply arrived (1 = first try;
    #: 0 = never probed because the process was already dead).
    probe_attempts: int = 0
    #: Wall-clock time of the last successful probe reply.
    last_seen: float | None = None


class LiveStorageView:
    """Aggregate replica statuses into Definition-2 accounting."""

    def __init__(
        self, f: int, data_size_bytes: int, statuses: list[ReplicaStatus]
    ) -> None:
        self.f = f
        self.data_bits = data_size_bytes * 8
        self.statuses = list(statuses)

    # ------------------------------------------------------------ quorums

    @property
    def alive_count(self) -> int:
        return sum(1 for status in self.statuses if status.alive)

    @property
    def majority(self) -> int:
        return self.f + 1

    @property
    def quorum_available(self) -> bool:
        return self.alive_count >= self.majority

    # ------------------------------------------------------------ storage

    @property
    def server_storage_bits(self) -> int:
        """Replica bits at live servers — Definition 2's at-rest charge."""
        return sum(
            status.replica_bits for status in self.statuses if status.alive
        )

    def thm1_floor_bits(self, concurrency: int = 1) -> int:
        """Theorem 1's lower bound at the given write concurrency."""
        return theorem1_bound_bits(self.f, concurrency, self.data_bits)

    @property
    def meets_thm1_floor(self) -> bool:
        """Does live at-rest storage sit at or above the Theorem 1 floor?

        Replication stores ``(2f+1) D`` bits, far above the floor; a
        ``False`` here means servers are missing or the accounting broke,
        both worth failing ``doctor`` over.
        """
        return self.server_storage_bits >= self.thm1_floor_bits()

    @property
    def max_ts(self) -> Timestamp | None:
        stamps = [
            status.ts for status in self.statuses
            if status.alive and status.ts is not None
        ]
        return max(stamps) if stamps else None

    def timestamp_consistent(self) -> bool:
        """No live replica is *ahead* of the quorum-visible maximum.

        Trivially true of the maximum itself; the useful content is that
        every live replica's timestamp is a real protocol timestamp
        (journal recovery produced nothing from the future).
        """
        top = self.max_ts
        return top is None or all(
            status.ts <= top
            for status in self.statuses
            if status.alive and status.ts is not None
        )
