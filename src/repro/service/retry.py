"""Retry policy and replica health tracking for the TCP client.

Two small, independently testable pieces the resilient
:class:`~repro.service.client.ServiceClient` composes:

* :class:`BackoffPolicy` — exponential backoff with **seeded** jitter.
  The jitter draw reuses :func:`repro.sim.failures.derive_draw` under its
  own ``"backoff"`` domain, so a given ``(seed, scope, attempt)`` always
  yields the same delay — across processes and Python versions. That
  determinism is load-bearing: the chaos suite replays runs by seed, and
  identical backoff sequences are what make retry timing reproducible
  (``tests/faults/test_client_resilience.py``).
* :class:`HealthTracker` — per-replica reply/silence bookkeeping. A
  replica that stays silent for ``demote_after`` consecutive attempts is
  *demoted*: dropped from the first-contact set so fresh operations stop
  burning their deadline budget on it. Demotion is never exile — resends
  still reach demoted replicas, and after ``cooldown_s`` the replica is
  re-probed (and instantly rehabilitated by its first reply), so a healed
  replica rejoins without operator action.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ParameterError
from repro.sim.failures import derive_draw

#: Resolution of the jitter draw (fraction in ``[0, 1)`` with 1e-6 steps).
_JITTER_SCALE = 1_000_000


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff, capped, with deterministic seeded jitter.

    ``delay(attempt)`` is ``min(base * factor**attempt, cap)`` stretched
    by up to ``jitter`` (relative), where the stretch comes from a
    SHA-256 draw over ``(seed, scope, attempt)`` — not from a shared RNG,
    so concurrent operations never perturb each other's sequences.
    """

    base: float = 0.1
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0 or self.factor < 1 or self.cap < self.base:
            raise ParameterError(
                "backoff needs base > 0, factor >= 1, cap >= base"
            )
        if not 0 <= self.jitter <= 1:
            raise ParameterError("jitter must be in [0, 1]")

    def delay(self, attempt: int, *, scope: str = "") -> float:
        """Seconds to wait after ``attempt`` timeouts (attempt 0 first)."""
        raw = min(self.base * self.factor ** attempt, self.cap)
        if self.jitter == 0:
            return raw
        draw = derive_draw(
            self.seed, f"{scope}:{attempt}", _JITTER_SCALE, domain="backoff"
        )
        return raw * (1.0 + self.jitter * draw / _JITTER_SCALE)

    def sequence(self, attempts: int, *, scope: str = "") -> list[float]:
        """The first ``attempts`` delays — the determinism test surface."""
        return [self.delay(i, scope=scope) for i in range(attempts)]


@dataclass
class ReplicaHealth:
    """One replica as the client currently sees it."""

    name: str
    consecutive_failures: int = 0
    retries: int = 0
    replies: int = 0
    demoted_at: float | None = None
    last_seen: float | None = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "consecutive_failures": self.consecutive_failures,
            "retries": self.retries,
            "replies": self.replies,
            "demoted": self.demoted_at is not None,
            "last_seen": self.last_seen,
        }


class HealthTracker:
    """Demote silent replicas from first contact; re-probe after cooldown."""

    def __init__(
        self,
        names: Iterable[str],
        *,
        demote_after: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if demote_after < 1:
            raise ParameterError("demote_after must be >= 1")
        if cooldown_s <= 0:
            raise ParameterError("cooldown_s must be positive")
        self.demote_after = demote_after
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.replicas = {name: ReplicaHealth(name) for name in names}
        self.demotions = 0

    # ----------------------------------------------------------- updates

    def mark_reply(self, name: str) -> None:
        """A reply arrived: reset failures, rehabilitate immediately."""
        health = self.replicas.get(name)
        if health is None:
            return
        health.consecutive_failures = 0
        health.demoted_at = None
        health.replies += 1
        health.last_seen = self.clock()

    def mark_silent(self, name: str) -> None:
        """A retry fired with ``name`` still silent."""
        health = self.replicas.get(name)
        if health is None:
            return
        health.consecutive_failures += 1
        health.retries += 1
        if health.consecutive_failures >= self.demote_after:
            if health.demoted_at is None:
                self.demotions += 1
            health.demoted_at = self.clock()

    # ----------------------------------------------------------- queries

    def demoted(self, name: str) -> bool:
        """Out of first contact right now? (False once cooldown elapses —
        the replica goes on probation and gets contacted again.)"""
        health = self.replicas.get(name)
        if health is None or health.demoted_at is None:
            return False
        return self.clock() - health.demoted_at < self.cooldown_s

    def first_contact(
        self, names: Sequence[str], majority: int
    ) -> list[str]:
        """Who a fresh operation should address first.

        The healthy subset when it can still form a quorum; everyone
        otherwise — a degraded client must never shrink below majority,
        or it turns a slow replica into an outage.
        """
        healthy = [name for name in names if not self.demoted(name)]
        if len(healthy) >= majority:
            return healthy
        return list(names)

    def snapshot(self) -> dict[str, dict]:
        """Per-replica health for diagnostics (status/doctor, benches)."""
        return {
            name: health.as_dict()
            for name, health in sorted(self.replicas.items())
        }


@dataclass
class RetryStats:
    """What one client's retry machinery did (bench + test surface)."""

    timeouts: int = 0
    resent_messages: int = 0
    reconnects: int = 0
    delays: list[float] = field(default_factory=list)


__all__ = [
    "BackoffPolicy",
    "HealthTracker",
    "ReplicaHealth",
    "RetryStats",
]
