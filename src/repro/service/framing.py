"""Length-prefixed framing for the TCP transport.

One frame is a 4-byte big-endian length followed by that many payload
bytes (the JSON from :mod:`repro.service.wire`). TCP is a byte stream;
the prefix is what turns it back into discrete protocol messages. A
length above :data:`MAX_FRAME_BYTES` raises
:class:`~repro.errors.WireError` immediately — a desynchronized or
hostile peer must not make the server allocate gigabytes.
"""

from __future__ import annotations

import asyncio
import struct

from repro.errors import WireError

#: Hard ceiling on one frame's payload. Generous: the largest legitimate
#: frame is one write request carrying a full replica block.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def pack_frame(body: bytes) -> bytes:
    """Prefix one payload with its length."""
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame — a peer that died mid-send — raises
    :class:`~repro.errors.WireError`: the stream is unrecoverable.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError("connection closed inside a frame header") from error
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireError("connection closed inside a frame body") from error


async def write_frame(writer: asyncio.StreamWriter, body: bytes) -> None:
    """Write one frame and drain the transport buffer."""
    writer.write(pack_frame(body))
    await writer.drain()
