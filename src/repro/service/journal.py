"""Append-only replica journal: crash recovery for one server.

The executor's sweep checkpoint (``repro.analysis.executor.SweepJournal``)
established the repository's journal idiom — JSONL, a header line pinning
a SHA-256 signature of everything that must match for the file to be
reusable, flush-per-line, a *tolerated* truncated trailing line (the
kill-mid-write artifact), and a hard error on any other corruption. This
module applies the same idiom to replica state: every write a server
applies is appended **before** the acknowledgement leaves the process
(write-ahead — see :class:`~repro.msgnet.protocol.ServerProtocol`'s
``on_apply`` contract), so a SIGKILLed server restarts exactly at the last
state any client could have observed as acknowledged.

Failure semantics mirror :class:`~repro.errors.CheckpointError` (and
:class:`~repro.errors.JournalError` subclasses it): a journal written by a
different replica configuration — another server name, crash budget, or
value size — refuses to load rather than silently resurrecting the wrong
state.
"""

from __future__ import annotations

import base64
import hashlib
import json
from pathlib import Path

from repro.coding.oracles import BlockSource, CodeBlock
from repro.errors import JournalError
from repro.registers.timestamps import Timestamp

#: Journal file format version (independent of the wire schema).
JOURNAL_VERSION = 1

#: Magic string identifying a replica journal header line.
JOURNAL_MAGIC = "repro-replica-journal"


def replica_signature(
    name: str, index: int, f: int, data_size_bytes: int, scheme: str
) -> str:
    """SHA-256 over the replica configuration a journal belongs to.

    Two server processes share a signature iff replaying one's journal
    into the other is sound: same replica identity, same cluster shape,
    same value size, same coding scheme.
    """
    payload = {
        "name": name,
        "index": index,
        "f": f,
        "data_size_bytes": data_size_bytes,
        "scheme": scheme,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ReplicaJournal:
    """Append-only JSONL journal of one replica's applied writes.

    Line 0 pins the magic, version, and replica signature; every further
    line is one applied write ``{"ts": [num, client], "block": {...}}``.
    The server process is the only writer, each line is flushed as it is
    written, and :meth:`load` tolerates exactly one truncated trailing
    line — that write was never acknowledged (the ack follows the flush),
    so dropping it is indistinguishable from the crash arriving a moment
    earlier.
    """

    def __init__(self, path: str | Path, signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self._handle = None

    # ------------------------------------------------------------- reading

    def load(self) -> list[tuple[Timestamp, CodeBlock]]:
        """Applied writes from an existing journal, validated, in order.

        Returns ``[]`` when the journal does not exist or is empty.
        Raises :class:`~repro.errors.JournalError` when the header is
        missing or pins a different replica, or when any line other than
        the final one is malformed.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_text().splitlines()
        if not lines:
            return []
        header = self._parse_line(lines[0], line_number=1)
        if header is None or header.get("journal") != JOURNAL_MAGIC:
            raise JournalError(
                f"{self.path}: not a replica journal (missing header)"
            )
        if header.get("journal_version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: unsupported journal version "
                f"{header.get('journal_version')!r}"
            )
        if header.get("signature") != self.signature:
            raise JournalError(
                f"{self.path}: journal was written by a different replica "
                f"configuration (signature {header.get('signature')!r} != "
                f"{self.signature!r}); refusing to recover from it"
            )
        entries: list[tuple[Timestamp, CodeBlock]] = []
        for number, line in enumerate(lines[1:], start=2):
            entry = self._parse_line(
                line, line_number=number, tolerate=(number == len(lines))
            )
            if entry is None:  # tolerated truncated trailing line
                continue
            try:
                ts = Timestamp(int(entry["ts"][0]), entry["ts"][1])
                raw = entry["block"]
                block = CodeBlock(
                    payload=base64.b64decode(raw["p"]),
                    index=int(raw["i"]),
                    source=BlockSource(int(raw["op"]), int(raw["si"])),
                    size_bits=int(raw["b"]),
                )
            except (KeyError, IndexError, TypeError, ValueError) as error:
                raise JournalError(
                    f"{self.path}:{number}: malformed journal entry: {error}"
                ) from error
            entries.append((ts, block))
        return entries

    def recovered(self) -> tuple[Timestamp, CodeBlock] | None:
        """The replica state to restart from: the highest journaled write.

        Entries are appended in apply order, and the apply rule only
        adopts strictly newer timestamps — so the journal is strictly
        increasing and the last entry is the recovery point. The maximum
        is taken anyway: recovery must not depend on an invariant the
        crash may have interrupted.
        """
        entries = self.load()
        if not entries:
            return None
        return max(entries, key=lambda entry: entry[0])

    def _parse_line(
        self, line: str, *, line_number: int, tolerate: bool = False
    ) -> dict | None:
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError as error:
            if tolerate:
                return None
            raise JournalError(
                f"{self.path}:{line_number}: corrupt journal line: {error}"
            ) from error
        if not isinstance(parsed, dict):
            raise JournalError(
                f"{self.path}:{line_number}: journal line is not an object"
            )
        return parsed

    # ------------------------------------------------------------- writing

    def open_for_append(self) -> None:
        """Open for appending; create the header when new or empty.

        A truncated trailing line left by a crash is trimmed back to the
        last complete line first — appending after partial text would fuse
        two entries into one permanently corrupt line.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists() and self.path.stat().st_size > 0
        if existed:
            text = self.path.read_text()
            if not text.endswith("\n"):
                text = text[: text.rfind("\n") + 1]
                self.path.write_text(text)
                existed = bool(text)
        self._handle = open(self.path, "a")
        if not existed:
            self._write_line({
                "journal": JOURNAL_MAGIC,
                "journal_version": JOURNAL_VERSION,
                "signature": self.signature,
            })

    def append(self, ts: Timestamp, block: CodeBlock) -> None:
        """Persist one applied write (flushed before this returns)."""
        self._write_line({
            "ts": [ts.num, ts.client],
            "block": {
                "p": base64.b64encode(block.payload).decode("ascii"),
                "i": block.index,
                "op": block.source.op_uid,
                "si": block.source.index,
                "b": block.size_bits,
            },
        })

    def entry_count(self) -> int:
        """Applied writes currently recoverable from the file."""
        return len(self.load())

    def _write_line(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
