"""Async client library for the TCP ABD service.

A :class:`ServiceClient` drives the *same*
:class:`~repro.msgnet.protocol.WriteOperation` /
:class:`~repro.msgnet.protocol.ReadOperation` machines as the simulated
deployment — this module adds only what a real network demands:

* one TCP connection per server with a background reader task feeding a
  single inbound queue;
* a **per-request timeout**: if no reply arrives for ``timeout`` seconds
  the client re-sends the current phase's requests to the servers still
  silent (safe: replies are deduplicated by sender, server writes are
  idempotent at equal timestamps);
* **bounded retry**: after ``retries`` resends without quorum the
  operation raises :class:`~repro.errors.QuorumTimeout` — the client
  never blocks forever on a dead majority, unlike the model's
  block-as-it-must semantics (a CLI must report, not hang).

Every completed operation is recorded with monotonic-clock invoke/return
times, so :meth:`ServiceClient.history` (and :func:`merge_histories`
across concurrent clients) produces a
:class:`~repro.spec.histories.History` the existing linearizability /
regularity checkers consume unchanged — the consistency-over-sockets
suite in ``tests/service/test_consistency.py``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Iterable, Sequence

from repro.coding.replication import ReplicationCode
from repro.errors import ParameterError, QuorumTimeout, WireError
from repro.msgnet.abd import OpRecord
from repro.msgnet.protocol import (
    ClientOperation,
    Payload,
    ReadOperation,
    WriteOperation,
)
from repro.service.framing import read_frame, write_frame
from repro.service.wire import decode_payload, encode_payload
from repro.sim.trace import OpKind
from repro.spec.histories import History, HOp

#: Endpoint map: server name -> (host, port).
Endpoints = dict[str, tuple[str, int]]


def monotonic_now() -> int:
    """The shared client-side clock: monotonic nanoseconds.

    All clients in one process share it, so merged histories carry a
    consistent real-time precedence order — exactly what the
    linearizability checker needs.
    """
    return time.monotonic_ns()


class _Connection:
    """One server connection + its reader task."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.task: asyncio.Task | None = None

    @property
    def alive(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()

    async def close(self) -> None:
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):
                pass
            self.task = None
        if self.writer is not None:
            self.writer.close()
            self.writer = None
            self.reader = None


class ServiceClient:
    """A named ABD client over TCP; one operation at a time (well-formed)."""

    def __init__(
        self,
        name: str,
        endpoints: Endpoints,
        f: int,
        data_size_bytes: int,
        *,
        timeout: float = 2.0,
        retries: int = 2,
        v0: bytes | None = None,
    ) -> None:
        if f < 1:
            raise ParameterError("f must be >= 1")
        if len(endpoints) != 2 * f + 1:
            raise ParameterError(
                f"expected {2 * f + 1} endpoints for f={f}, "
                f"got {len(endpoints)}"
            )
        self.name = name
        self.endpoints = dict(endpoints)
        self.f = f
        self.majority = f + 1
        self.scheme = ReplicationCode(data_size_bytes, n=len(endpoints))
        self.v0 = v0 or bytes(data_size_bytes)
        self.timeout = timeout
        self.retries = retries
        self.server_names = list(endpoints)
        self.ops: list[OpRecord] = []
        self.decisions: list[tuple] = []
        self._next_op_uid = 0
        self._queue: asyncio.Queue[tuple[str, Payload]] = asyncio.Queue()
        self._conns = {name: _Connection(name) for name in endpoints}

    # --------------------------------------------------------- connections

    async def connect(self) -> None:
        """Open every reachable server connection (down servers tolerated)."""
        for name in self.server_names:
            await self._ensure_connection(name)

    async def _ensure_connection(self, name: str) -> bool:
        conn = self._conns[name]
        if conn.alive:
            return True
        host, port = self.endpoints[name]
        try:
            conn.reader, conn.writer = await asyncio.open_connection(
                host, port
            )
        except OSError:
            conn.reader = conn.writer = None
            return False
        conn.task = asyncio.ensure_future(self._read_loop(conn))
        return True

    async def _read_loop(self, conn: _Connection) -> None:
        try:
            while True:
                body = await read_frame(conn.reader)
                if body is None:
                    break
                self._queue.put_nowait((conn.name, decode_payload(body)))
        except (WireError, ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            if conn.writer is not None:
                conn.writer.close()

    async def close(self) -> None:
        for conn in self._conns.values():
            await conn.close()

    # ---------------------------------------------------------- operations

    async def write(self, value: bytes) -> object:
        operation = WriteOperation(
            self.name, self._take_op_uid(), value, self.scheme,
            self.server_names, self.majority, decisions=self.decisions,
        )
        return await self._run(operation, OpKind.WRITE, value)

    async def read(self) -> bytes:
        operation = ReadOperation(
            self.name, self._take_op_uid(), self.scheme,
            self.server_names, self.majority, decisions=self.decisions,
        )
        return await self._run(operation, OpKind.READ, None)

    def _take_op_uid(self) -> int:
        op_uid = self._next_op_uid
        self._next_op_uid += 1
        return op_uid

    async def _run(
        self, operation: ClientOperation, kind: OpKind, written: bytes | None
    ) -> object:
        record = OpRecord(self.name, kind, written, monotonic_now())
        self.ops.append(record)
        await self._send_all(operation.start())
        attempts = 0
        while not operation.done:
            try:
                sender, payload = await asyncio.wait_for(
                    self._queue.get(), timeout=self.timeout
                )
            except asyncio.TimeoutError:
                attempts += 1
                if attempts > self.retries:
                    raise QuorumTimeout(
                        f"{self.name}: {operation.kind} op "
                        f"{operation.op_uid} found no quorum of "
                        f"{self.majority} after {attempts} attempts"
                    ) from None
                for name in self.server_names:
                    await self._ensure_connection(name)
                await self._send_all(operation.resend())
                continue
            await self._send_all(operation.on_message(sender, payload))
        record.return_time = monotonic_now()
        record.result = operation.result
        return operation.result

    async def _send_all(
        self, outgoing: Iterable[tuple[str, Payload]]
    ) -> None:
        for recipient, payload in outgoing:
            conn = self._conns[recipient]
            if not conn.alive and not await self._ensure_connection(recipient):
                continue  # down server: the quorum machinery absorbs it
            try:
                await write_frame(conn.writer, encode_payload(payload))
            except (ConnectionResetError, BrokenPipeError, OSError):
                conn.writer.close()

    # ------------------------------------------------------------- history

    def history(self) -> History:
        return merge_histories([self], self.v0)


def merge_histories(
    clients: Sequence[ServiceClient], v0: bytes | None = None
) -> History:
    """One checker-ready history across concurrent clients.

    All clients must live in one process (they share the monotonic
    clock). Op uids are reassigned globally; per-client op order is
    preserved by invoke time.
    """
    if not clients:
        raise ParameterError("no clients to merge")
    records = [record for client in clients for record in client.ops]
    records.sort(key=lambda record: (record.invoke_time, record.client))
    ops = [
        HOp(
            op_uid=index,
            client=record.client,
            kind=record.kind,
            written=record.written,
            result=record.result,
            invoke_time=record.invoke_time,
            return_time=record.return_time,
        )
        for index, record in enumerate(records)
    ]
    return History(ops, v0 if v0 is not None else clients[0].v0)


# ----------------------------------------------------------- one-shot RPC


async def probe(
    host: str, port: int, request: Payload, want_tag: str,
    timeout: float = 2.0,
) -> Payload | None:
    """Single request/reply against one server; ``None`` if unreachable.

    The status and doctor commands use this — no client identity, no
    history, just one framed round-trip.
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
    except (OSError, asyncio.TimeoutError):
        return None
    try:
        await write_frame(writer, encode_payload(request))
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            body = await asyncio.wait_for(read_frame(reader),
                                          timeout=remaining)
            if body is None:
                return None
            payload = decode_payload(body)
            if payload[0] == want_tag and payload[1] == request[1]:
                return payload
    except (WireError, ConnectionResetError, asyncio.TimeoutError, OSError):
        return None
    finally:
        writer.close()
