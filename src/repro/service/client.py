"""Async client library for the TCP ABD service.

A :class:`ServiceClient` drives the *same*
:class:`~repro.msgnet.protocol.WriteOperation` /
:class:`~repro.msgnet.protocol.ReadOperation` machines as the simulated
deployment — this module adds only what a real network demands:

* one TCP connection per server with a background reader task feeding a
  single inbound queue; *connects are themselves time-bounded*, so a
  black-holed replica (SYN into the void) cannot eat an operation's
  budget before the first byte moves;
* a **per-request timeout**: if no reply arrives within the current wait
  the client re-sends the current phase's requests to the servers still
  silent (safe: replies are deduplicated by sender, server writes are
  idempotent at equal timestamps). With a
  :class:`~repro.service.retry.BackoffPolicy` installed, successive
  waits grow exponentially with seeded jitter — deterministic per seed;
* an optional **per-operation deadline** (``op_deadline``): a wall-clock
  budget for the whole operation, distinct from the per-request timeout.
  Every wait and every reconnect is clamped to what remains of it;
* **bounded retry**: once the budget is spent (``retries`` resends, or
  the deadline) the operation raises
  :class:`~repro.errors.QuorumTimeout` carrying structured diagnostics —
  which servers answered, which stayed silent, attempts, elapsed — the
  client never blocks forever on a dead majority, unlike the model's
  block-as-it-must semantics (a CLI must report, not hang);
* a :class:`~repro.service.retry.HealthTracker` demoting repeatedly
  silent replicas from the *first-contact* set (fresh operations stop
  paying for them; resends still reach them, so a healed replica
  rejoins after its cooldown).

Every completed operation is recorded with monotonic-clock invoke/return
times, so :meth:`ServiceClient.history` (and :func:`merge_histories`
across concurrent clients) produces a
:class:`~repro.spec.histories.History` the existing linearizability /
regularity checkers consume unchanged — the consistency-over-sockets
suite in ``tests/service/test_consistency.py``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Iterable, Sequence

from repro.coding.replication import ReplicationCode
from repro.errors import ParameterError, QuorumTimeout, WireError
from repro.msgnet.abd import OpRecord
from repro.msgnet.protocol import (
    ClientOperation,
    Payload,
    ReadOperation,
    WriteOperation,
)
from repro.service.framing import read_frame, write_frame
from repro.service.retry import BackoffPolicy, HealthTracker, RetryStats
from repro.service.wire import decode_payload, encode_payload
from repro.sim.trace import OpKind
from repro.spec.histories import History, HOp

#: Endpoint map: server name -> (host, port).
Endpoints = dict[str, tuple[str, int]]


def monotonic_now() -> int:
    """The shared client-side clock: monotonic nanoseconds.

    All clients in one process share it, so merged histories carry a
    consistent real-time precedence order — exactly what the
    linearizability checker needs.
    """
    return time.monotonic_ns()


class _Connection:
    """One server connection + its reader task."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.task: asyncio.Task | None = None

    @property
    def alive(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()

    async def close(self) -> None:
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):
                pass
            self.task = None
        if self.writer is not None:
            self.writer.close()
            self.writer = None
            self.reader = None


class ServiceClient:
    """A named ABD client over TCP; one operation at a time (well-formed)."""

    def __init__(
        self,
        name: str,
        endpoints: Endpoints,
        f: int,
        data_size_bytes: int,
        *,
        timeout: float = 2.0,
        retries: int = 2,
        v0: bytes | None = None,
        op_deadline: float | None = None,
        backoff: BackoffPolicy | None = None,
        health: HealthTracker | None = None,
    ) -> None:
        if f < 1:
            raise ParameterError("f must be >= 1")
        if len(endpoints) != 2 * f + 1:
            raise ParameterError(
                f"expected {2 * f + 1} endpoints for f={f}, "
                f"got {len(endpoints)}"
            )
        self.name = name
        self.endpoints = dict(endpoints)
        self.f = f
        self.majority = f + 1
        self.scheme = ReplicationCode(data_size_bytes, n=len(endpoints))
        self.v0 = v0 or bytes(data_size_bytes)
        self.timeout = timeout
        self.retries = retries
        if op_deadline is not None and op_deadline <= 0:
            raise ParameterError("op_deadline must be positive")
        self.op_deadline = op_deadline
        self.backoff = backoff
        self.health = health if health is not None \
            else HealthTracker(list(endpoints))
        self.stats = RetryStats()
        self.server_names = list(endpoints)
        self.ops: list[OpRecord] = []
        self.decisions: list[tuple] = []
        self._next_op_uid = 0
        self._queue: asyncio.Queue[tuple[str, Payload]] = asyncio.Queue()
        self._conns = {name: _Connection(name) for name in endpoints}

    # --------------------------------------------------------- connections

    async def connect(self) -> None:
        """Open every reachable server connection (down servers tolerated)."""
        for name in self.server_names:
            await self._ensure_connection(name)

    async def _ensure_connection(
        self, name: str, deadline: float | None = None
    ) -> bool:
        """Open (or reuse) the connection to ``name``, time-bounded.

        The connect wait is capped by the per-request ``timeout`` *and*
        by whatever remains of the operation deadline — a black-holed
        replica (connection attempts that neither succeed nor fail) must
        cost at most one request-timeout, never the whole budget.
        """
        conn = self._conns[name]
        if conn.alive:
            return True
        budget = self.timeout
        if deadline is not None:
            budget = min(budget, deadline - time.monotonic())
            if budget <= 0:
                return False
        host, port = self.endpoints[name]
        try:
            conn.reader, conn.writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=budget
            )
        except (OSError, asyncio.TimeoutError):
            conn.reader = conn.writer = None
            return False
        self.stats.reconnects += 1
        conn.task = asyncio.ensure_future(self._read_loop(conn))
        return True

    async def _read_loop(self, conn: _Connection) -> None:
        try:
            while True:
                body = await read_frame(conn.reader)
                if body is None:
                    break
                self._queue.put_nowait((conn.name, decode_payload(body)))
        except (WireError, ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            if conn.writer is not None:
                conn.writer.close()

    async def close(self) -> None:
        for conn in self._conns.values():
            await conn.close()

    # ---------------------------------------------------------- operations

    async def write(self, value: bytes) -> object:
        operation = WriteOperation(
            self.name, self._take_op_uid(), value, self.scheme,
            self.server_names, self.majority, decisions=self.decisions,
        )
        return await self._run(operation, OpKind.WRITE, value)

    async def read(self) -> bytes:
        operation = ReadOperation(
            self.name, self._take_op_uid(), self.scheme,
            self.server_names, self.majority, decisions=self.decisions,
        )
        return await self._run(operation, OpKind.READ, None)

    def _take_op_uid(self) -> int:
        op_uid = self._next_op_uid
        self._next_op_uid += 1
        return op_uid

    async def _run(
        self, operation: ClientOperation, kind: OpKind, written: bytes | None
    ) -> object:
        record = OpRecord(self.name, kind, written, monotonic_now())
        self.ops.append(record)
        started = time.monotonic()
        deadline = (
            started + self.op_deadline
            if self.op_deadline is not None else None
        )
        scope = f"{self.name}:{operation.op_uid}"
        # First contact goes to the replicas currently believed healthy
        # (never fewer than a majority); everyone else is reached by the
        # first resend, so demotion can never mask a live quorum.
        targets = set(self.health.first_contact(
            self.server_names, self.majority
        ))
        opening = operation.start()
        await self._send_all(
            [(s, p) for s, p in opening if s in targets], deadline
        )
        attempts = 0
        while not operation.done:
            wait = (
                self.backoff.delay(attempts, scope=scope)
                if self.backoff is not None else self.timeout
            )
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise self._quorum_timeout(
                        operation, attempts, started, "deadline exhausted"
                    )
                wait = min(wait, remaining)
            try:
                sender, payload = await asyncio.wait_for(
                    self._queue.get(), timeout=wait
                )
            except asyncio.TimeoutError:
                attempts += 1
                self.stats.timeouts += 1
                self.stats.delays.append(wait)
                out_of_budget = (
                    attempts > self.retries if deadline is None
                    else time.monotonic() >= deadline
                )
                if out_of_budget:
                    raise self._quorum_timeout(
                        operation, attempts, started,
                        f"no quorum of {self.majority}"
                    ) from None
                for name in operation.unanswered():
                    self.health.mark_silent(name)
                for name in self.server_names:
                    await self._ensure_connection(name, deadline)
                resent = operation.resend()
                self.stats.resent_messages += len(resent)
                await self._send_all(resent, deadline)
                continue
            self.health.mark_reply(sender)
            await self._send_all(
                operation.on_message(sender, payload), deadline
            )
        record.return_time = monotonic_now()
        record.result = operation.result
        return operation.result

    def _quorum_timeout(
        self, operation: ClientOperation, attempts: int, started: float,
        reason: str,
    ) -> QuorumTimeout:
        return QuorumTimeout(
            f"{self.name}: {operation.kind} op {operation.op_uid} "
            f"{reason} after {attempts} attempt(s); "
            f"answered={operation.answered()} silent={operation.unanswered()}",
            op_kind=operation.kind,
            op_uid=operation.op_uid,
            client=self.name,
            needed=self.majority,
            answered=tuple(operation.answered()),
            silent=tuple(operation.unanswered()),
            attempts=attempts,
            elapsed_s=time.monotonic() - started,
            deadline_s=self.op_deadline,
        )

    async def _send_all(
        self,
        outgoing: Iterable[tuple[str, Payload]],
        deadline: float | None = None,
    ) -> None:
        for recipient, payload in outgoing:
            conn = self._conns[recipient]
            if not conn.alive and not await self._ensure_connection(
                recipient, deadline
            ):
                continue  # down server: the quorum machinery absorbs it
            try:
                await write_frame(conn.writer, encode_payload(payload))
            except (ConnectionResetError, BrokenPipeError, OSError):
                conn.writer.close()

    # ------------------------------------------------------------- history

    def history(self) -> History:
        return merge_histories([self], self.v0)


def merge_histories(
    clients: Sequence[ServiceClient], v0: bytes | None = None
) -> History:
    """One checker-ready history across concurrent clients.

    All clients must live in one process (they share the monotonic
    clock). Op uids are reassigned globally; per-client op order is
    preserved by invoke time.
    """
    if not clients:
        raise ParameterError("no clients to merge")
    records = [record for client in clients for record in client.ops]
    records.sort(key=lambda record: (record.invoke_time, record.client))
    ops = [
        HOp(
            op_uid=index,
            client=record.client,
            kind=record.kind,
            written=record.written,
            result=record.result,
            invoke_time=record.invoke_time,
            return_time=record.return_time,
        )
        for index, record in enumerate(records)
    ]
    return History(ops, v0 if v0 is not None else clients[0].v0)


# ----------------------------------------------------------- one-shot RPC


async def probe(
    host: str, port: int, request: Payload, want_tag: str,
    timeout: float = 2.0,
) -> Payload | None:
    """Single request/reply against one server; ``None`` if unreachable.

    The status and doctor commands use this — no client identity, no
    history, just one framed round-trip.
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
    except (OSError, asyncio.TimeoutError):
        return None
    try:
        await write_frame(writer, encode_payload(request))
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            body = await asyncio.wait_for(read_frame(reader),
                                          timeout=remaining)
            if body is None:
                return None
            payload = decode_payload(body)
            if payload[0] == want_tag and payload[1] == request[1]:
                return payload
    except (WireError, ConnectionResetError, asyncio.TimeoutError, OSError):
        return None
    finally:
        writer.close()
