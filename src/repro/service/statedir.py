"""State-directory layout shared by servers, the daemon CLI, and tests.

One running cluster owns one state directory::

    <state_dir>/
      meta.json        cluster config + spawn-time pids (daemon-written)
      <name>.pid       server-written after the socket is listening
      <name>.port      server-written actual bound port (ephemeral-safe)
      <name>.journal.jsonl   append-only replica journal
      <name>.log       server stdout/stderr (daemon-spawned processes)

Pid and port files are written by the *server process itself*, atomically
(tmp + rename), only once the listener is up — which is exactly the
readiness signal ``repro serve`` polls for. ``meta.json`` records the
cluster configuration; live ports are always re-read from the port files,
because a revived server on an ephemeral port lands somewhere new.
"""

from __future__ import annotations

import errno
import json
import os
from pathlib import Path

from repro.errors import DaemonError

META_VERSION = 1


def pid_alive(pid: int) -> bool:
    """Is a process with this pid running (signal-0 probe)?

    A zombie counts as dead: a SIGKILLed detached server sits in state
    ``Z`` until pid 1 reaps it, and during that window signal-0 still
    succeeds — but the server is gone and must be revivable.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError as error:  # pragma: no cover - exotic platforms
        return error.errno != errno.ESRCH
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
        # Field 3, after the parenthesised comm (which may contain spaces).
        if stat.rpartition(")")[2].split()[0] == "Z":
            return False
    except OSError:  # no procfs (macOS) — keep the signal-0 answer
        pass
    return True


def atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so readers never observe a partial file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    tmp.replace(path)


class StateDir:
    """Path arithmetic + meta bookkeeping for one cluster state dir."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # --------------------------------------------------------------- paths

    @property
    def meta_path(self) -> Path:
        return self.root / "meta.json"

    @property
    def faults_path(self) -> Path:
        """The fault plan installed on this cluster (absent = clean).

        Written by ``repro chaos``; read back by ``status``/``doctor`` so
        an operator can always tell a chaos run from a real outage.
        """
        return self.root / "faults.json"

    def pid_path(self, name: str) -> Path:
        return self.root / f"{name}.pid"

    def port_path(self, name: str) -> Path:
        return self.root / f"{name}.port"

    def journal_path(self, name: str) -> Path:
        return self.root / f"{name}.journal.jsonl"

    def log_path(self, name: str) -> Path:
        return self.root / f"{name}.log"

    # ---------------------------------------------------------------- meta

    def write_meta(self, meta: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write(
            self.meta_path,
            json.dumps({"version": META_VERSION, **meta},
                       indent=2, sort_keys=True) + "\n",
        )

    def read_meta(self) -> dict:
        """The cluster config; :class:`DaemonError` when absent/corrupt."""
        if not self.meta_path.exists():
            raise DaemonError(
                f"{self.root}: no meta.json — no cluster was started here"
            )
        try:
            meta = json.loads(self.meta_path.read_text())
        except json.JSONDecodeError as error:
            raise DaemonError(
                f"{self.meta_path}: corrupt meta.json: {error}"
            ) from error
        if meta.get("version") != META_VERSION:
            raise DaemonError(
                f"{self.meta_path}: unsupported meta version "
                f"{meta.get('version')!r}"
            )
        return meta

    def exists(self) -> bool:
        return self.meta_path.exists()

    # ------------------------------------------------------------ liveness

    def read_pid(self, name: str) -> int | None:
        path = self.pid_path(name)
        if not path.exists():
            return None
        try:
            return int(path.read_text().strip())
        except ValueError:
            return None

    def read_port(self, name: str) -> int | None:
        path = self.port_path(name)
        if not path.exists():
            return None
        try:
            return int(path.read_text().strip())
        except ValueError:
            return None

    def server_alive(self, name: str) -> bool:
        pid = self.read_pid(name)
        return pid is not None and pid_alive(pid)

    def live_servers(self) -> list[str]:
        """Names (from meta) whose pidfile points at a live process."""
        meta = self.read_meta()
        return [
            server["name"]
            for server in meta["servers"]
            if self.server_alive(server["name"])
        ]

    def clear_runtime_files(self, name: str) -> None:
        """Remove one server's pid/port files (journal is kept)."""
        for path in (self.pid_path(name), self.port_path(name)):
            path.unlink(missing_ok=True)
