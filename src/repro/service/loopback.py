"""An in-process loopback cluster: real sockets, one event loop.

Tests and benchmarks that need real TCP framing but not process isolation
run ``n`` :class:`~repro.service.server.ReplicaServer` instances inside
the current event loop on ephemeral loopback ports. Everything is real
except the process boundary: frames cross the kernel's TCP stack,
journals hit disk, drain semantics are the production path. The daemon
suite (``tests/service/test_daemon.py``) covers the subprocess half.
"""

from __future__ import annotations

from pathlib import Path

from repro.service.client import Endpoints, ServiceClient
from repro.service.server import ReplicaServer, ServerConfig


class LoopbackCluster:
    """``n = 2f + 1`` in-loop replica servers on ephemeral ports."""

    def __init__(
        self,
        f: int,
        data_size_bytes: int,
        state_dir: str | Path,
        *,
        handle_delay_s: float = 0.0,
    ) -> None:
        self.f = f
        self.n = 2 * f + 1
        self.data_size_bytes = data_size_bytes
        self.state_dir = Path(state_dir)
        self.servers: dict[str, ReplicaServer] = {}
        for index in range(self.n):
            name = f"s{index}"
            self.servers[name] = ReplicaServer(ServerConfig(
                name=name, index=index, f=f,
                data_size_bytes=data_size_bytes,
                state_dir=str(self.state_dir),
                handle_delay_s=handle_delay_s,
            ))

    async def start(self) -> None:
        for server in self.servers.values():
            await server.start()

    @property
    def endpoints(self) -> Endpoints:
        return {
            name: ("127.0.0.1", server.port)
            for name, server in self.servers.items()
        }

    def client(self, name: str, **kwargs) -> ServiceClient:
        """A connected-on-demand client for this cluster."""
        return ServiceClient(
            name, self.endpoints, self.f, self.data_size_bytes, **kwargs
        )

    def server_storage_bits(self) -> int:
        """At-rest replica bits — the live Definition-2 at-rest charge."""
        return sum(
            server.protocol.state.block.size_bits
            for server in self.servers.values()
            if server.protocol is not None and not server.stopped.is_set()
        )

    async def drain(self, *names: str) -> None:
        """Gracefully stop the named servers (all when none given)."""
        targets = names or tuple(self.servers)
        for name in targets:
            await self.servers[name].drain()

    async def __aenter__(self) -> "LoopbackCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()
