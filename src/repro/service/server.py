"""One replica server: the ABD state machine behind an asyncio TCP socket.

A :class:`ReplicaServer` wraps exactly the
:class:`~repro.msgnet.protocol.ServerProtocol` the simulator runs — zero
protocol logic lives here. This module contributes only the production
shell around it:

* **Transport** — length-prefixed JSON frames (``framing``/``wire``) over
  asyncio TCP; one request frame in, its reply frames out on the same
  connection.
* **Durability** — a write-ahead :class:`~repro.service.journal.ReplicaJournal`:
  the protocol's ``on_apply`` hook appends (and flushes) before the ack
  frame is written, so SIGKILL can never lose an acknowledged write. On
  start the server recovers its ``(ts, block)`` from the journal.
* **Lifecycle** — pid/port files appear only once the listener is up
  (the daemon's readiness signal); SIGTERM triggers a graceful drain:
  stop accepting, let in-flight requests finish, flush and close the
  journal, remove runtime files, exit 0.

``python -m repro server ...`` (see :func:`main`) is the subprocess entry
point ``repro serve`` spawns ``n`` times.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from dataclasses import dataclass

from repro.coding.replication import ReplicationCode
from repro.errors import ParameterError, ReproError, WireError
from repro.msgnet.protocol import ServerProtocol, ServerState
from repro.service.framing import read_frame, write_frame
from repro.service.journal import ReplicaJournal, replica_signature
from repro.service.statedir import StateDir, atomic_write
from repro.service.wire import decode_payload, encode_payload

#: How long a drain waits for in-flight requests before forcing the issue.
DRAIN_GRACE_S = 5.0


@dataclass
class ServerConfig:
    """Everything one replica process needs to come up."""

    name: str
    index: int
    f: int
    data_size_bytes: int
    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in <name>.port
    handle_delay_s: float = 0.0  # test hook: per-request artificial latency

    @property
    def n(self) -> int:
        return 2 * self.f + 1

    def validate(self) -> None:
        if self.f < 1:
            raise ParameterError("f must be >= 1")
        if not 0 <= self.index < self.n:
            raise ParameterError(
                f"server index {self.index} outside [0, {self.n})"
            )
        if self.data_size_bytes < 1:
            raise ParameterError("data size must be >= 1 byte")


class ReplicaServer:
    """The asyncio shell around one :class:`ServerProtocol` replica."""

    def __init__(self, config: ServerConfig) -> None:
        config.validate()
        self.config = config
        self.state_dir = StateDir(config.state_dir)
        self.scheme = ReplicationCode(config.data_size_bytes, n=config.n)
        self.signature = replica_signature(
            config.name, config.index, config.f, config.data_size_bytes,
            self.scheme.name,
        )
        self.journal = ReplicaJournal(
            self.state_dir.journal_path(config.name), self.signature
        )
        self.protocol: ServerProtocol | None = None
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._busy = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self.stopped = asyncio.Event()

    # ------------------------------------------------------------ recovery

    def _recover_protocol(self) -> ServerProtocol:
        """Build the replica state machine, replaying the journal if any."""
        recovered = self.journal.recovered()
        state = None
        if recovered is not None:
            ts, block = recovered
            state = ServerState(block, ts)
        protocol = ServerProtocol(
            self.config.name, self.scheme, self.config.index,
            bytes(self.config.data_size_bytes), state=state,
            on_apply=self.journal.append,
        )
        return protocol

    # --------------------------------------------------------------- start

    async def start(self) -> None:
        """Recover, listen, and publish pid/port files (readiness)."""
        self.protocol = self._recover_protocol()
        self.journal.open_for_append()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.state_dir.root.mkdir(parents=True, exist_ok=True)
        atomic_write(self.state_dir.port_path(self.config.name),
                     f"{self.port}\n")
        atomic_write(self.state_dir.pid_path(self.config.name),
                     f"{os.getpid()}\n")

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain())
            )

    # ---------------------------------------------------------- connections

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    body = await read_frame(reader)
                except WireError:
                    break  # peer died mid-frame or desynchronized
                if body is None or self._draining:
                    break
                self._busy += 1
                self._idle.clear()
                try:
                    await self._handle_frame(body, writer)
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle.set()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _handle_frame(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        payload = decode_payload(body)
        if self.config.handle_delay_s > 0:
            await asyncio.sleep(self.config.handle_delay_s)
        # The TCP transport is connection-addressed: every reply the
        # protocol emits for this request goes back on this connection,
        # so the sender name is only informational.
        replies = self.protocol.handle("client", payload)
        for _recipient, reply in replies:
            await write_frame(writer, encode_payload(reply))

    # ---------------------------------------------------------------- drain

    async def drain(self) -> None:
        """Graceful stop: no new work, finish in-flight, persist, exit."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=DRAIN_GRACE_S)
        except asyncio.TimeoutError:  # pragma: no cover - pathological stall
            pass
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        self.journal.close()
        self.state_dir.clear_runtime_files(self.config.name)
        self.stopped.set()

    async def run_until_stopped(self) -> None:
        await self.start()
        self.install_signal_handlers()
        await self.stopped.wait()


# ----------------------------------------------------------- process entry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro server",
        description="One ABD replica server process (spawned by "
                    "`repro serve`; not normally run by hand)",
    )
    parser.add_argument("--name", required=True)
    parser.add_argument("--index", type=int, required=True)
    parser.add_argument("--f", type=int, required=True)
    parser.add_argument("--data-size", type=int, required=True)
    parser.add_argument("--state-dir", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--handle-delay-ms", type=float, default=0.0,
                        help="test hook: artificial per-request latency")
    return parser


def main(argv=None) -> int:
    """Run one replica to completion; 0 on graceful drain, 1 on error."""
    args = build_parser().parse_args(argv)
    config = ServerConfig(
        name=args.name, index=args.index, f=args.f,
        data_size_bytes=args.data_size, state_dir=args.state_dir,
        host=args.host, port=args.port,
        handle_delay_s=args.handle_delay_ms / 1000.0,
    )
    server = ReplicaServer(config)
    try:
        asyncio.run(server.run_until_stopped())
    except ReproError as error:
        print(f"{config.name}: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
