"""ABD-style replicated register (Attiya, Bar-Noy, Dolev [4]).

The classic replication baseline the paper measures everything against:
``n = 2f + 1`` base objects each hold one full timestamped replica, so the
storage cost is ``(2f + 1) * D`` bits — the ``O(fD)`` arm of the paper's
``Theta(min(f, c) * D)``, insensitive to concurrency.

This is the no-write-back variant: readers do not propagate what they read.
As the paper notes (Appendix A), ABD without read write-back satisfies
*strong regularity* (MWRegWO) rather than atomicity, which is exactly the
consistency level the adaptive algorithm targets — making this an
apples-to-apples storage comparison.

Writes take two rounds (read timestamps, then store); reads take one round
and return the highest-timestamped replica. Both are wait-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coding.replication import ReplicationCode
from repro.coding.scheme import CodingScheme
from repro.errors import ParameterError
from repro.registers.base import (
    Chunk,
    OpGenerator,
    RegisterProtocol,
    RegisterSetup,
    initial_chunk,
)
from repro.registers.timestamps import Timestamp
from repro.sim.actions import WaitResponses
from repro.sim.client import OperationContext


def replication_setup(f: int, data_size_bytes: int,
                      initial_value: bytes | None = None) -> RegisterSetup:
    """Build the ``k = 1`` setup ABD expects (``n = 2f + 1`` replicas)."""

    def factory(setup: RegisterSetup) -> CodingScheme:
        return ReplicationCode(setup.data_size_bytes, n=setup.n)

    return RegisterSetup(
        f=f,
        k=1,
        data_size_bytes=data_size_bytes,
        initial_value=initial_value,
        scheme_factory=factory,
    )


@dataclass(frozen=True)
class ABDState:
    """One full timestamped replica."""

    chunk: Chunk


@dataclass(frozen=True)
class ABDUpdateArgs:
    chunk: Chunk


def read_rmw(state: ABDState, args: None) -> tuple[ABDState, Chunk]:
    return state, state.chunk


def update_rmw(state: ABDState, args: ABDUpdateArgs) -> tuple[ABDState, None]:
    if args.chunk.ts > state.chunk.ts:
        return ABDState(args.chunk), None
    return state, None


class ABDRegister(RegisterProtocol):
    """Replicated strongly regular MWMR register, ``(2f + 1) * D`` bits."""

    name = "abd"

    def __init__(self, setup: RegisterSetup) -> None:
        if setup.k != 1:
            raise ParameterError(
                "ABD is full replication; build its setup with "
                "replication_setup(f, data_size_bytes)"
            )
        super().__init__(setup)

    def initial_bo_state(self, bo_id: int) -> ABDState:
        return ABDState(initial_chunk(self.scheme, self.setup.v0(), bo_id))

    def _read_round(self, ctx: OperationContext) -> OpGenerator:
        handles = [
            ctx.trigger(bo_id, read_rmw, None, label="read")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return [handle.response for handle in handles if handle.responded]

    def write_gen(self, ctx: OperationContext, value: bytes) -> OpGenerator:
        oracle = ctx.new_encode_oracle()
        chunks = yield from self._read_round(ctx)
        max_num = max(chunk.ts.num for chunk in chunks)
        ts = Timestamp(max_num + 1, ctx.client.name)
        handles = [
            ctx.trigger(
                bo_id,
                update_rmw,
                ABDUpdateArgs(Chunk(ts, oracle.get(bo_id))),
                label="update",
            )
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return "ok"

    def read_gen(self, ctx: OperationContext) -> OpGenerator:
        chunks = yield from self._read_round(ctx)
        best = max(chunks, key=lambda chunk: chunk.ts)
        oracle = ctx.new_decode_oracle()
        oracle.push(best.block)
        return oracle.done()
