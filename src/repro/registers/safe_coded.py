"""The safe, wait-free register of Appendix E (Algorithms 4-5).

Each base object stores exactly one timestamped piece, so the storage is
always ``n * D / k = (2f/k + 1) * D`` bits (Corollary 7) — *below* the
Theorem 1 bound, which is possible only because safe semantics lets a read
that is concurrent with writes return anything. The paper includes this
algorithm to show the lower bound genuinely hinges on regularity.

* Writes: one read round (pick a timestamp) + one update round.
* Reads: a single read round; if no timestamp has ``k`` distinct pieces,
  some write is concurrent and the read may return ``v0`` (Appendix E's
  argument: such a read is concurrent with a write, so safeness allows any
  return value).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registers.base import (
    Chunk,
    OpGenerator,
    RegisterProtocol,
    group_by_timestamp,
    initial_chunk,
)
from repro.registers.timestamps import Timestamp
from repro.sim.actions import WaitResponses
from repro.sim.client import OperationContext


@dataclass(frozen=True)
class SafeState:
    """Base-object state: exactly one timestamped piece."""

    chunk: Chunk


@dataclass(frozen=True)
class SafeUpdateArgs:
    """Parameters of the safe register's update RMW."""

    chunk: Chunk


def read_rmw(state: SafeState, args: None) -> tuple[SafeState, Chunk]:
    """Return the stored chunk (Algorithm 5, line 23)."""
    return state, state.chunk


def update_rmw(state: SafeState, args: SafeUpdateArgs) -> tuple[SafeState, None]:
    """``update(bo, w, ts)`` (lines 10-12): overwrite iff newer."""
    if args.chunk.ts > state.chunk.ts:
        return SafeState(args.chunk), None
    return state, None


class SafeCodedRegister(RegisterProtocol):
    """Wait-free strongly safe MWMR register with ``nD/k`` storage."""

    name = "safe-coded"

    def initial_bo_state(self, bo_id: int) -> SafeState:
        return SafeState(initial_chunk(self.scheme, self.setup.v0(), bo_id))

    def _read_round(self, ctx: OperationContext) -> OpGenerator:
        """``readValue()`` (lines 20-26): collect chunks from a quorum."""
        handles = [
            ctx.trigger(bo_id, read_rmw, None, label="readValue")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return [handle.response for handle in handles if handle.responded]

    def write_gen(self, ctx: OperationContext, value: bytes) -> OpGenerator:
        """``write(v)`` (lines 1-9)."""
        oracle = ctx.new_encode_oracle()  # line 2
        chunks = yield from self._read_round(ctx)  # line 3
        max_num = max(chunk.ts.num for chunk in chunks)
        ts = Timestamp(max_num + 1, ctx.client.name)  # line 4
        # One vectorised encode pass produces the whole codeword up front.
        pieces = oracle.get_many(range(self.n))
        handles = [
            ctx.trigger(
                bo_id,
                update_rmw,
                SafeUpdateArgs(Chunk(ts, pieces[bo_id])),
                label="update",
            )
            for bo_id in range(self.n)  # lines 5-6
        ]
        yield WaitResponses(handles, self.quorum)  # line 7
        ctx.rounds += 1
        return "ok"  # line 8

    def read_gen(self, ctx: OperationContext) -> OpGenerator:
        """``read()`` (lines 13-19): one round, decode or fall back to v0."""
        chunks = yield from self._read_round(ctx)  # line 14
        groups = group_by_timestamp(chunks)
        k = self.setup.k
        candidates = [ts for ts, indexed in groups.items() if len(indexed) >= k]
        if not candidates:  # line 18: concurrent writes; v0 is a safe answer
            return self.setup.v0()
        best = max(candidates)  # deterministic choice among eligible (line 16)
        oracle = ctx.new_decode_oracle()
        for chunk in groups[best].values():
            oracle.push(chunk.block)
        return oracle.done()  # line 17
