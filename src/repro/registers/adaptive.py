"""The paper's adaptive register emulation (Section 5, Algorithms 1-3).

The algorithm combines erasure coding with replication to achieve storage
``O(min(f, c) * D)``: base objects accumulate *pieces* (one ``D/k``-bit code
block per write) in their ``Vp`` field while fewer than ``k`` writes are in
flight, and fall back to storing a *full replica* in their ``Vf`` field when
concurrency exceeds the piece budget. Garbage collection during the write's
third round deletes everything older than the completed write, so storage
returns to ``(2f + k) * D / k`` bits in quiescence (Lemma 8).

Guarantees (Theorem 2): strong regularity (MWRegWO) and FW-termination —
writes are wait-free; reads return in runs with finitely many writes.

Pseudocode correspondence (line numbers refer to Algorithms 2-3):

=====================  =====================================================
paper                  here
=====================  =====================================================
``Write(v)`` 3-15      :meth:`AdaptiveRegister.write_gen`
``Read()`` 16-22       :meth:`AdaptiveRegister.read_gen`
``readValue()`` 23-31  :meth:`AdaptiveRegister.read_value_round`
``update(...)`` 32-39  :func:`update_rmw`
``GC(...)`` 40-45      :func:`gc_rmw`
=====================  =====================================================

One deliberate deviation from a literal reading: the pseudocode passes the
entire ``WriteSet`` (all ``n`` pieces) to every ``update`` RMW, but base
object ``i`` only ever stores its own piece or the ``k``-piece replica, so
we ship exactly those ``k + 1`` pieces per RMW. This matters because the
cost model charges pending-RMW parameters (Definition 2); shipping all ``n``
pieces would strawman the algorithm's channel footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registers.base import (
    Chunk,
    OpGenerator,
    RegisterProtocol,
    group_by_timestamp,
    initial_chunk,
)
from repro.registers.timestamps import TS_ZERO, Timestamp, max_timestamp
from repro.sim.actions import WaitResponses
from repro.sim.client import OperationContext


@dataclass(frozen=True)
class AdaptiveState:
    """Base-object state ``<storedTS, Vp, Vf>`` (Algorithm 1, line 8)."""

    stored_ts: Timestamp
    vp: tuple[Chunk, ...]
    vf: tuple[Chunk, ...]


@dataclass(frozen=True)
class ReadValueResponse:
    """What the read RMW returns: the object's timestamp and chunks."""

    stored_ts: Timestamp
    chunks: tuple[Chunk, ...]


@dataclass(frozen=True)
class UpdateArgs:
    """Parameters of the ``update`` RMW (piece + replica ride visibly)."""

    ts: Timestamp
    stored_ts: Timestamp
    piece: Chunk
    replica: tuple[Chunk, ...]
    k: int


@dataclass(frozen=True)
class GCArgs:
    """Parameters of the ``GC`` RMW."""

    ts: Timestamp
    piece: Chunk


def read_rmw(state: AdaptiveState, args: None) -> tuple[AdaptiveState, ReadValueResponse]:
    """``read(bo_i)`` (line 26): snapshot storedTS and all chunks."""
    return state, ReadValueResponse(state.stored_ts, state.vp + state.vf)


def update_rmw(state: AdaptiveState, args: UpdateArgs) -> tuple[AdaptiveState, None]:
    """``update(bo, WriteSet, ts, storedTS, i)`` — lines 32-39."""
    if args.ts <= state.stored_ts:  # line 33: stale write, ignore
        return state, None
    vp, vf = state.vp, state.vf
    if len(vp) < args.k:  # line 35: room for a piece
        # Line 36: drop pieces older than the writer's storedTS, add ours.
        vp = tuple(c for c in vp if c.ts >= args.stored_ts) + (args.piece,)
    elif not vf or any(c.ts < args.ts for c in vf):  # line 37
        vf = args.replica  # line 38: store the full replica (k pieces)
    stored_ts = max_timestamp(state.stored_ts, args.stored_ts)  # line 39
    return AdaptiveState(stored_ts, vp, vf), None


def gc_rmw(state: AdaptiveState, args: GCArgs) -> tuple[AdaptiveState, None]:
    """``GC(bo, WriteSet, ts, i)`` — lines 40-45."""
    vp = tuple(c for c in state.vp if c.ts >= args.ts)  # line 41
    vf = tuple(c for c in state.vf if c.ts >= args.ts)  # line 42
    if any(c.ts == args.ts for c in vf):  # line 43: full replica of my write
        vf = (args.piece,)  # line 44: keep only my piece of it
    stored_ts = max_timestamp(state.stored_ts, args.ts)  # line 45
    return AdaptiveState(stored_ts, vp, vf), None


class AdaptiveRegister(RegisterProtocol):
    """Strongly regular, FW-terminating register with adaptive storage."""

    name = "adaptive"

    def initial_bo_state(self, bo_id: int) -> AdaptiveState:
        """``<<0,0>, {<<0,0>, <v0_i, i>>}, {}>`` (Algorithm 1, line 9)."""
        chunk = initial_chunk(self.scheme, self.setup.v0(), bo_id)
        return AdaptiveState(stored_ts=TS_ZERO, vp=(chunk,), vf=())

    # ------------------------------------------------------------- rounds

    def read_value_round(self, ctx: OperationContext) -> OpGenerator:
        """``readValue()`` (lines 23-31): one quorum round of reads.

        Returns ``(max storedTS seen, list of chunks seen)``.
        """
        handles = [
            ctx.trigger(bo_id, read_rmw, None, label="readValue")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        responses: list[ReadValueResponse] = [
            handle.response for handle in handles if handle.responded
        ]
        ctx.rounds += 1
        stored_ts = max_timestamp(*(r.stored_ts for r in responses))
        chunks = [chunk for r in responses for chunk in r.chunks]
        return stored_ts, chunks

    # ---------------------------------------------------------------- ops

    def write_gen(self, ctx: OperationContext, value: bytes) -> OpGenerator:
        """``Write(v)`` (lines 3-15): read-ts, update, garbage-collect."""
        oracle = ctx.new_encode_oracle()  # line 4: WriteSet = encode(v)
        # Round 1 (line 5): collect storedTS and visible timestamps.
        stored_ts, chunks = yield from self.read_value_round(ctx)
        max_num = max(
            stored_ts.num,
            max((chunk.ts.num for chunk in chunks), default=0),
        )  # line 6
        ts = Timestamp(max_num + 1, ctx.client.name)  # line 7
        # Round 2 (lines 8-10): update every base object, await a quorum.
        # One vectorised encode pass covers the replica (first k blocks)
        # and every per-object piece.
        pieces = oracle.get_many(range(self.n))
        replica = tuple(Chunk(ts, pieces[j]) for j in range(self.setup.k))
        handles = [
            ctx.trigger(
                bo_id,
                update_rmw,
                UpdateArgs(
                    ts=ts,
                    stored_ts=stored_ts,
                    piece=Chunk(ts, pieces[bo_id]),
                    replica=replica,
                    k=self.setup.k,
                ),
                label="update",
            )
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        # Round 3 (lines 11-13): garbage-collect, await a quorum.
        handles = [
            ctx.trigger(
                bo_id,
                gc_rmw,
                GCArgs(ts=ts, piece=Chunk(ts, pieces[bo_id])),
                label="gc",
            )
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return "ok"  # line 14

    def read_gen(self, ctx: OperationContext) -> OpGenerator:
        """``Read()`` (lines 16-22): retry rounds until a decodable value.

        A value is returnable once some timestamp ``ts >= storedTS`` has at
        least ``k`` distinct pieces in the round's ReadSet (line 18);
        returning older timestamps could violate regularity (Section 5).
        """
        k = self.setup.k
        while True:
            stored_ts, chunks = yield from self.read_value_round(ctx)
            groups = group_by_timestamp(chunks)
            candidates = [
                ts
                for ts, indexed in groups.items()
                if ts >= stored_ts and len(indexed) >= k
            ]
            if not candidates:
                continue  # line 19: another round
            best = max(candidates)  # line 20
            oracle = ctx.new_decode_oracle()
            for chunk in groups[best].values():
                oracle.push(chunk.block)
            return oracle.done()  # line 21: decode
