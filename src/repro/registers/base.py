"""Register-protocol plumbing shared by all four emulations.

A register protocol supplies the kernel with per-base-object initial state
and generator coroutines for the high-level ``write``/``read`` operations.
The :class:`RegisterSetup` fixes the paper's parameters: ``f`` (crashes
tolerated), ``k`` (code dimension), ``D`` (data size), and derives
``n = 2f + k`` base objects — so any two ``(n - f)``-quorums intersect in at
least ``k`` objects, the quorum fact every correctness proof in Section 5
leans on. ``k = 1`` degenerates to replication with ``n = 2f + 1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from repro.coding.oracles import BlockSource, CodeBlock
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.scheme import CodingScheme
from repro.errors import ParameterError
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.sim.client import OperationContext

#: Pseudo-operation uid that "wrote" the initial value v0.
INITIAL_OP_UID = -1

OpGenerator = Generator[Any, None, Any]


@dataclass(frozen=True)
class RegisterSetup:
    """Problem parameters: failures, code dimension, and data size."""

    f: int
    k: int
    data_size_bytes: int
    initial_value: bytes | None = None
    scheme_factory: Callable[["RegisterSetup"], CodingScheme] | None = None

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ParameterError("f must be >= 1 (otherwise nothing to tolerate)")
        if self.k < 1:
            raise ParameterError("k must be >= 1")
        if self.scheme_factory is None and self.data_size_bytes % self.k != 0:
            # The default RS scheme shards evenly; a custom factory (e.g.
            # a PaddedScheme) may support any size.
            raise ParameterError(
                "data_size_bytes must be divisible by k (or supply a "
                "scheme_factory that handles padding)"
            )
        if (
            self.initial_value is not None
            and len(self.initial_value) != self.data_size_bytes
        ):
            raise ParameterError("initial_value must have data_size_bytes bytes")

    @property
    def n(self) -> int:
        """Number of base objects: ``n = 2f + k``."""
        return 2 * self.f + self.k

    @property
    def quorum(self) -> int:
        """Round quorum size ``n - f``."""
        return self.n - self.f

    @property
    def data_size_bits(self) -> int:
        return self.data_size_bytes * 8

    def v0(self) -> bytes:
        """The register's initial value (all-zero unless overridden)."""
        if self.initial_value is not None:
            return self.initial_value
        return bytes(self.data_size_bytes)

    def build_scheme(self) -> CodingScheme:
        """Build the k-of-n coding scheme (systematic RS by default)."""
        if self.scheme_factory is not None:
            return self.scheme_factory(self)
        return ReedSolomonCode(self.k, self.n, self.data_size_bytes)


@dataclass(frozen=True)
class Chunk:
    """A timestamped code block (Algorithm 1's ``Chunks``)."""

    ts: Timestamp
    block: CodeBlock

    @property
    def index(self) -> int:
        return self.block.index


def initial_chunk(scheme: CodingScheme, v0: bytes, index: int) -> Chunk:
    """Build the initial chunk ``<<v0_i, i>, <0, 0>>`` for base object i."""
    payload = scheme.encode_block(v0, index)
    block = CodeBlock(
        payload=payload,
        index=index,
        source=BlockSource(INITIAL_OP_UID, index),
        size_bits=scheme.block_size_bits(index),
    )
    return Chunk(TS_ZERO, block)


def group_by_timestamp(chunks: Iterable[Chunk]) -> dict[Timestamp, dict[int, Chunk]]:
    """Group chunks by timestamp, deduplicating block indices within each.

    Because a timestamp identifies one write and block numbers identify
    positions, ``(ts, index)`` pins a unique payload; duplicates are safe to
    collapse.
    """
    grouped: dict[Timestamp, dict[int, Chunk]] = {}
    for chunk in chunks:
        grouped.setdefault(chunk.ts, {})[chunk.index] = chunk
    return grouped


class RegisterProtocol(ABC):
    """Interface the kernel drives: state factory + operation coroutines."""

    #: Short name used in benchmark tables.
    name: str = "abstract"

    def __init__(self, setup: RegisterSetup) -> None:
        self.setup = setup
        self.scheme = setup.build_scheme()

    @property
    def n(self) -> int:
        return self.setup.n

    @property
    def quorum(self) -> int:
        return self.setup.quorum

    @abstractmethod
    def initial_bo_state(self, bo_id: int) -> Any:
        """Return base object ``bo_id``'s initial state."""

    @abstractmethod
    def write_gen(self, ctx: OperationContext, value: bytes) -> OpGenerator:
        """Return the coroutine implementing ``write(value)``."""

    @abstractmethod
    def read_gen(self, ctx: OperationContext) -> OpGenerator:
        """Return the coroutine implementing ``read()``."""


@dataclass
class RoundResult:
    """What one quorum round of RMWs produced."""

    responses: list[Any] = field(default_factory=list)
