"""Simplified Coded Atomic Storage (CAS) — the paper's reference [6].

Cadambe, Lynch, Medard, Musial, *A coded shared atomic memory algorithm
for message passing architectures* (NCA 2014), is one of the named
algorithms whose storage the paper characterises as ``O(cD)``. This module
implements its core mechanism adapted to the RMW base-object model:

* every stored piece carries a *label*: ``PRE`` (pre-written) or ``FIN``
  (finalized);
* a write runs four rounds — query the highest finalized tag, *pre-write*
  its pieces, *finalize* its tag, and garbage-collect older tags;
* a read queries the highest finalized tag it can see and returns that
  tag's value once ``k`` pieces are gathered (re-querying while writes
  race ahead), then *propagates* the finalization (write-back) before
  returning — the step that buys atomicity.

Storage behaviour matches the paper's critique: pre-written pieces of
concurrent writes pile up (a piece cannot be discarded before its write
finalizes — a reader might need it), so under ``c`` concurrent writes each
object holds up to ``c + 1`` pieces: ``Theta(c n D / k)`` peak, with GC
restoring ``n D / k`` in quiescence.

This is a simplification of CAS (single-object RMWs instead of message
channels, reader-side decode via this package's oracles), preserving the
tag/label state machine, the quorum arithmetic (``n = 2f + k``), the
atomicity mechanism, and the storage profile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.registers.base import (
    Chunk,
    OpGenerator,
    RegisterProtocol,
    group_by_timestamp,
    initial_chunk,
)
from repro.registers.timestamps import TS_ZERO, Timestamp, max_timestamp
from repro.sim.actions import WaitResponses
from repro.sim.client import OperationContext


class Label(enum.Enum):
    PRE = "pre"
    FIN = "fin"


@dataclass(frozen=True)
class TaggedChunk:
    """A piece with its CAS label."""

    chunk: Chunk
    label: Label

    @property
    def ts(self) -> Timestamp:
        return self.chunk.ts

    @property
    def index(self) -> int:
        return self.chunk.index


@dataclass(frozen=True)
class CASState:
    """Base-object state: labelled pieces + highest finalized tag seen."""

    pieces: tuple[TaggedChunk, ...]
    fin_ts: Timestamp


@dataclass(frozen=True)
class QueryResponse:
    fin_ts: Timestamp
    chunks: tuple[TaggedChunk, ...]


@dataclass(frozen=True)
class PreWriteArgs:
    piece: Chunk


@dataclass(frozen=True)
class FinalizeArgs:
    ts: Timestamp


@dataclass(frozen=True)
class GCArgs:
    ts: Timestamp


def query_rmw(state: CASState, args: None) -> tuple[CASState, QueryResponse]:
    return state, QueryResponse(state.fin_ts, state.pieces)


def pre_write_rmw(state: CASState, args: PreWriteArgs) -> tuple[CASState, None]:
    """Store the piece labelled PRE (idempotent per (ts, index))."""
    if any(p.ts == args.piece.ts and p.index == args.piece.index
           for p in state.pieces):
        return state, None
    pieces = state.pieces + (TaggedChunk(args.piece, Label.PRE),)
    return CASState(pieces, state.fin_ts), None


def finalize_rmw(state: CASState, args: FinalizeArgs) -> tuple[CASState, None]:
    """Relabel the tag's pieces FIN and raise the finalized watermark."""
    pieces = tuple(
        TaggedChunk(p.chunk, Label.FIN) if p.ts == args.ts else p
        for p in state.pieces
    )
    return CASState(pieces, max_timestamp(state.fin_ts, args.ts)), None


def gc_rmw(state: CASState, args: GCArgs) -> tuple[CASState, None]:
    """Drop pieces strictly below the completed tag."""
    pieces = tuple(p for p in state.pieces if p.ts >= args.ts)
    return CASState(pieces, max_timestamp(state.fin_ts, args.ts)), None


class CASRegister(RegisterProtocol):
    """Atomic coded register with CAS's tag/label protocol."""

    name = "cas"

    def initial_bo_state(self, bo_id: int) -> CASState:
        chunk = initial_chunk(self.scheme, self.setup.v0(), bo_id)
        return CASState((TaggedChunk(chunk, Label.FIN),), TS_ZERO)

    # -------------------------------------------------------------- rounds

    def _query_round(self, ctx: OperationContext) -> OpGenerator:
        handles = [
            ctx.trigger(bo_id, query_rmw, None, label="query")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return [handle.response for handle in handles if handle.responded]

    def _broadcast(self, ctx: OperationContext, fn, args_for, label: str
                   ) -> OpGenerator:
        handles = [
            ctx.trigger(bo_id, fn, args_for(bo_id), label=label)
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return None

    # ----------------------------------------------------------------- ops

    def write_gen(self, ctx: OperationContext, value: bytes) -> OpGenerator:
        oracle = ctx.new_encode_oracle()
        responses = yield from self._query_round(ctx)
        max_num = max(
            max((p.ts.num for p in r.chunks), default=0)
            for r in responses
        )
        max_num = max(max_num, max(r.fin_ts.num for r in responses))
        ts = Timestamp(max_num + 1, ctx.client.name)
        yield from self._broadcast(
            ctx, pre_write_rmw,
            lambda bo_id: PreWriteArgs(Chunk(ts, oracle.get(bo_id))),
            "pre-write",
        )
        yield from self._broadcast(
            ctx, finalize_rmw, lambda _bo_id: FinalizeArgs(ts), "finalize"
        )
        yield from self._broadcast(
            ctx, gc_rmw, lambda _bo_id: GCArgs(ts), "gc"
        )
        return "ok"

    def read_gen(self, ctx: OperationContext) -> OpGenerator:
        """Return the highest finalized tag's value, then propagate it.

        The candidate tag must be finalized *somewhere* (``fin_ts`` or a
        FIN-labelled piece) and decodable from the round's pieces of that
        tag (PRE pieces of the tag are usable — the tag being finalized
        anywhere proves its write passed the pre-write quorum).
        """
        k = self.setup.k
        while True:
            responses = yield from self._query_round(ctx)
            fin_watermark = max_timestamp(*(r.fin_ts for r in responses))
            finalized_tags = {fin_watermark}
            for response in responses:
                for piece in response.chunks:
                    if piece.label is Label.FIN:
                        finalized_tags.add(piece.ts)
            chunks = [
                piece.chunk for response in responses
                for piece in response.chunks
            ]
            grouped = group_by_timestamp(chunks)
            candidates = [
                ts
                for ts, indexed in grouped.items()
                if ts in finalized_tags
                and ts >= fin_watermark
                and len(indexed) >= k
            ]
            if not candidates:
                continue
            best = max(candidates)
            # Write-back: propagate the finalization before returning.
            yield from self._broadcast(
                ctx, finalize_rmw, lambda _bo_id: FinalizeArgs(best),
                "read-finalize",
            )
            oracle = ctx.new_decode_oracle()
            for chunk in grouped[best].values():
                oracle.push(chunk.block)
            return oracle.done()
