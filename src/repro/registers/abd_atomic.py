"""Atomic (linearizable) ABD: replication with read write-back.

The paper's Appendix A notes that the strong-regularity definition it
targets "is satisfied by ABD in case readers do not change the storage (no
write-back)". This module supplies the *other* ABD — the classic atomic
variant whose readers write the value they are about to return back to a
quorum before returning — so the repository exhibits the full semantic
ladder executable side by side:

====================  ==========================  ==============
register              read behaviour              semantics
====================  ==========================  ==============
``SafeCodedRegister``  1 round, may return v0     strongly safe
``ABDRegister``        1 round, no write-back     MWRegWO
``AtomicABDRegister``  2 rounds, write-back       atomic
====================  ==========================  ==============

The write-back closes the new-old-inversion window: once a read returns
timestamp ``ts``, a quorum stores ``>= ts``, so no later read can return
an older value. Storage stays ``(2f + 1) * D`` — atomicity costs a read
round, not space, which is why the paper's lower bound (about space) is
indifferent to this upgrade.
"""

from __future__ import annotations

from repro.registers.abd import ABDRegister, ABDUpdateArgs, update_rmw
from repro.registers.base import Chunk, OpGenerator
from repro.sim.actions import WaitResponses
from repro.sim.client import OperationContext


class AtomicABDRegister(ABDRegister):
    """Linearizable MWMR register: ABD with read write-back."""

    name = "abd-atomic"

    def read_gen(self, ctx: OperationContext) -> OpGenerator:
        chunks = yield from self._read_round(ctx)
        best = max(chunks, key=lambda chunk: chunk.ts)
        # Write-back round: install the chosen replica at a quorum before
        # returning, so every later read sees a timestamp >= best.ts.
        handles = [
            ctx.trigger(
                bo_id,
                update_rmw,
                ABDUpdateArgs(Chunk(best.ts, best.block)),
                label="write-back",
            )
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        oracle = ctx.new_decode_oracle()
        oracle.push(best.block)
        return oracle.done()
