"""Register emulations over fault-prone shared memory.

Six algorithms spanning the paper's design space:

========================  ==============  ==========  ========================
register                  consistency     liveness    storage (bo state)
========================  ==============  ==========  ========================
``AdaptiveRegister``      MWRegWO         FW-term.    ``O(min(f, c) * D)``
``SafeCodedRegister``     strongly safe   wait-free   ``n * D / k``
``ABDRegister``           MWRegWO         wait-free   ``(2f + 1) * D``
``AtomicABDRegister``     atomic          wait-free   ``(2f + 1) * D``
``CodedOnlyRegister``     MWRegWO         FW-term.    ``Theta(c * D)``
``ChannelCodedRegister``  MWRegWO         FW-term.    ``n * D / k`` — but the
                                                      Definition 2 cost is
                                                      still ``Theta(c * D)``
                                                      (channels are charged)
========================  ==============  ==========  ========================
"""

from repro.registers.abd import ABDRegister, replication_setup
from repro.registers.abd_atomic import AtomicABDRegister
from repro.registers.ablations import AdaptiveNoGCRegister
from repro.registers.adaptive import AdaptiveRegister, AdaptiveState
from repro.registers.base import (
    Chunk,
    INITIAL_OP_UID,
    RegisterProtocol,
    RegisterSetup,
    group_by_timestamp,
    initial_chunk,
)
from repro.registers.cas import CASRegister, CASState
from repro.registers.channel_coded import ChannelCodedRegister, ChannelCodedState
from repro.registers.coded_only import CodedOnlyRegister, CodedOnlyState
from repro.registers.invariants import (
    Invariant1Report,
    check_invariant1,
    chunks_in_state,
)
from repro.registers.safe_coded import SafeCodedRegister, SafeState
from repro.registers.timestamps import TS_ZERO, Timestamp, max_timestamp

__all__ = [
    "ABDRegister",
    "AdaptiveNoGCRegister",
    "AdaptiveRegister",
    "AdaptiveState",
    "AtomicABDRegister",
    "CASRegister",
    "CASState",
    "ChannelCodedRegister",
    "ChannelCodedState",
    "Chunk",
    "CodedOnlyRegister",
    "CodedOnlyState",
    "INITIAL_OP_UID",
    "Invariant1Report",
    "RegisterProtocol",
    "RegisterSetup",
    "SafeCodedRegister",
    "SafeState",
    "TS_ZERO",
    "Timestamp",
    "check_invariant1",
    "chunks_in_state",
    "group_by_timestamp",
    "initial_chunk",
    "max_timestamp",
    "replication_setup",
]
