"""A pure erasure-coded register with unbounded piece sets.

This models the coded storage algorithms the paper's introduction critiques
([5, 6, 8, 9]): coded data cannot be reconstructed from one node, so a
writer may not delete other writers' in-flight pieces — and under ``c``
concurrent writes every base object accumulates up to ``c + 1`` pieces,
for ``Theta(c * n * D / k) = O(cD)`` total storage. The paper's Corollary 2
says this is inherent for *any* black-box algorithm that never stores a
full replica in ``f + 1`` objects; this register is the executable witness.

Structurally it is the adaptive algorithm with the ``|Vp| < k`` cap and the
``Vf`` replica fallback removed: pieces always go to the (unbounded) piece
set, garbage collection still runs in the write's third round, reads retry
until a decodable timestamp appears (FW-termination). Regularity is
preserved — only the storage bound degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registers.base import (
    Chunk,
    OpGenerator,
    RegisterProtocol,
    group_by_timestamp,
    initial_chunk,
)
from repro.registers.timestamps import TS_ZERO, Timestamp, max_timestamp
from repro.sim.actions import WaitResponses
from repro.sim.client import OperationContext


@dataclass(frozen=True)
class CodedOnlyState:
    """Base-object state: storedTS plus an *unbounded* piece set."""

    stored_ts: Timestamp
    vp: tuple[Chunk, ...]


@dataclass(frozen=True)
class ReadValueResponse:
    stored_ts: Timestamp
    chunks: tuple[Chunk, ...]


@dataclass(frozen=True)
class UpdateArgs:
    ts: Timestamp
    stored_ts: Timestamp
    piece: Chunk


@dataclass(frozen=True)
class GCArgs:
    ts: Timestamp


def read_rmw(
    state: CodedOnlyState, args: None
) -> tuple[CodedOnlyState, ReadValueResponse]:
    return state, ReadValueResponse(state.stored_ts, state.vp)


def update_rmw(state: CodedOnlyState, args: UpdateArgs) -> tuple[CodedOnlyState, None]:
    """Store the piece unconditionally (no cap, no replica fallback)."""
    if args.ts <= state.stored_ts:  # stale write
        return state, None
    vp = tuple(c for c in state.vp if c.ts >= args.stored_ts) + (args.piece,)
    stored_ts = max_timestamp(state.stored_ts, args.stored_ts)
    return CodedOnlyState(stored_ts, vp), None


def gc_rmw(state: CodedOnlyState, args: GCArgs) -> tuple[CodedOnlyState, None]:
    """Delete pieces older than the completed write's timestamp."""
    vp = tuple(c for c in state.vp if c.ts >= args.ts)
    stored_ts = max_timestamp(state.stored_ts, args.ts)
    return CodedOnlyState(stored_ts, vp), None


class CodedOnlyRegister(RegisterProtocol):
    """Regular, FW-terminating, but ``O(cD)`` storage under concurrency."""

    name = "coded-only"

    def initial_bo_state(self, bo_id: int) -> CodedOnlyState:
        chunk = initial_chunk(self.scheme, self.setup.v0(), bo_id)
        return CodedOnlyState(stored_ts=TS_ZERO, vp=(chunk,))

    def read_value_round(self, ctx: OperationContext) -> OpGenerator:
        handles = [
            ctx.trigger(bo_id, read_rmw, None, label="readValue")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        responses: list[ReadValueResponse] = [
            handle.response for handle in handles if handle.responded
        ]
        stored_ts = max_timestamp(*(r.stored_ts for r in responses))
        chunks = [chunk for r in responses for chunk in r.chunks]
        return stored_ts, chunks

    def write_gen(self, ctx: OperationContext, value: bytes) -> OpGenerator:
        oracle = ctx.new_encode_oracle()
        stored_ts, chunks = yield from self.read_value_round(ctx)
        max_num = max(
            stored_ts.num, max((chunk.ts.num for chunk in chunks), default=0)
        )
        ts = Timestamp(max_num + 1, ctx.client.name)
        # One vectorised encode pass produces the whole codeword up front.
        pieces = oracle.get_many(range(self.n))
        handles = [
            ctx.trigger(
                bo_id,
                update_rmw,
                UpdateArgs(ts=ts, stored_ts=stored_ts,
                           piece=Chunk(ts, pieces[bo_id])),
                label="update",
            )
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        handles = [
            ctx.trigger(bo_id, gc_rmw, GCArgs(ts=ts), label="gc")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return "ok"

    def read_gen(self, ctx: OperationContext) -> OpGenerator:
        k = self.setup.k
        while True:
            stored_ts, chunks = yield from self.read_value_round(ctx)
            groups = group_by_timestamp(chunks)
            candidates = [
                ts
                for ts, indexed in groups.items()
                if ts >= stored_ts and len(indexed) >= k
            ]
            if not candidates:
                continue
            best = max(candidates)
            oracle = ctx.new_decode_oracle()
            for chunk in groups[best].values():
                oracle.push(chunk.block)
            return oracle.done()
