"""A channel-parking coded register (the Section 3.2 evasion attempt).

Some erasure-coded algorithms ([5, 8] in the paper) keep *base-object*
storage small — one piece per object — by letting information ride in the
network: writers' in-flight messages carry the pieces, and readers
accumulate pieces across repeated rounds. The paper's response (Section
3.2) is that its cost model charges channels too ("since we define
parameters and responses of pending RMWs to be part of clients' and base
objects' states, information in channels is counted"), so these algorithms
do not evade Theorem 1.

This register makes that argument executable:

* each base object stores exactly **one** timestamped piece (plus a
  ``stored_ts`` watermark), so bo-state storage is a flat ``n * D / k``;
* writes take three rounds — read timestamps, update (replace-if-newer),
  confirm (raise the watermark);
* reads loop, accumulating pieces **across rounds** in their decode oracle
  until some timestamp at/above the highest watermark seen has ``k``
  distinct pieces (same-timestamp pieces always belong to one write, so
  cross-round mixing is safe).

Under ``c`` concurrent writers the Definition 2 cost still grows with
``c``: every outstanding write keeps ``n`` piece-carrying update RMWs in
flight. The benchmark ``bench_channel_parking.py`` measures exactly that
split (flat bo-state vs growing total).

**Liveness caveat (and why Theorem 1 does not cover this register).**
With one piece per object, concurrent writes overwrite each other's
pieces; a run can fragment the system into ``n`` objects holding ``n``
*different* timestamps, where no value has ``k`` pieces and a solo reader
loops forever. In this package's kernel a client triggers a whole round
atomically, so fair runs always converge and FW-termination holds here —
but at the paper's finer granularity (a writer may crash after a single
trigger) the fragmented state is reachable permanently, so the algorithm
is **not lock-free** in the paper's model. This matters: under the
adversary Ad, overwrites keep shrinking each write's storage contribution,
ops cycle back into ``C-``, and writes *complete* — escaping Lemma 3's
disjunction (see ``bench_t1_lower_bound.py``). The escape is bought
exactly by giving up lock-freedom, which Theorem 1 assumes; the real
ORCAS [8] avoids the fragmentation by falling back to full replicas in
the channels — landing on the O(cD) cost the paper describes either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registers.base import (
    Chunk,
    OpGenerator,
    RegisterProtocol,
    initial_chunk,
)
from repro.registers.timestamps import TS_ZERO, Timestamp, max_timestamp
from repro.sim.actions import WaitResponses
from repro.sim.client import OperationContext


@dataclass(frozen=True)
class ChannelCodedState:
    """One piece plus the completeness watermark."""

    chunk: Chunk
    stored_ts: Timestamp


@dataclass(frozen=True)
class ReadResponse:
    chunk: Chunk
    stored_ts: Timestamp


@dataclass(frozen=True)
class UpdateArgs:
    piece: Chunk


@dataclass(frozen=True)
class ConfirmArgs:
    ts: Timestamp


def read_rmw(
    state: ChannelCodedState, args: None
) -> tuple[ChannelCodedState, ReadResponse]:
    return state, ReadResponse(state.chunk, state.stored_ts)


def update_rmw(
    state: ChannelCodedState, args: UpdateArgs
) -> tuple[ChannelCodedState, None]:
    """Replace the stored piece iff the incoming one is newer."""
    if args.piece.ts > state.chunk.ts:
        return ChannelCodedState(args.piece, state.stored_ts), None
    return state, None


def confirm_rmw(
    state: ChannelCodedState, args: ConfirmArgs
) -> tuple[ChannelCodedState, None]:
    """Raise the completeness watermark after a quorum holds the write."""
    stored_ts = max_timestamp(state.stored_ts, args.ts)
    return ChannelCodedState(state.chunk, stored_ts), None


class ChannelCodedRegister(RegisterProtocol):
    """Regular register with one-piece objects and channel-borne cost."""

    name = "channel-coded"

    def initial_bo_state(self, bo_id: int) -> ChannelCodedState:
        chunk = initial_chunk(self.scheme, self.setup.v0(), bo_id)
        return ChannelCodedState(chunk, TS_ZERO)

    def _read_round(self, ctx: OperationContext) -> OpGenerator:
        handles = [
            ctx.trigger(bo_id, read_rmw, None, label="readValue")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return [handle.response for handle in handles if handle.responded]

    def write_gen(self, ctx: OperationContext, value: bytes) -> OpGenerator:
        oracle = ctx.new_encode_oracle()
        responses = yield from self._read_round(ctx)
        max_num = max(
            max(r.chunk.ts.num for r in responses),
            max(r.stored_ts.num for r in responses),
        )
        ts = Timestamp(max_num + 1, ctx.client.name)
        # One vectorised encode pass produces the whole codeword up front.
        pieces = oracle.get_many(range(self.n))
        handles = [
            ctx.trigger(
                bo_id,
                update_rmw,
                UpdateArgs(Chunk(ts, pieces[bo_id])),
                label="update",
            )
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        handles = [
            ctx.trigger(bo_id, confirm_rmw, ConfirmArgs(ts), label="confirm")
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return "ok"

    def read_gen(self, ctx: OperationContext) -> OpGenerator:
        """Accumulate pieces across rounds until a watermarked ts decodes.

        Pieces go straight into the decode oracle (one attempt per
        timestamp) — per Definition 1/2 the oracle is where a reader's
        gathered blocks live, and its state is not charged as storage. The
        coroutine keeps only meta-data: which indices each timestamp has.
        """
        k = self.setup.k
        oracle = ctx.new_decode_oracle()
        attempt_of: dict[Timestamp, int] = {}
        indices_of: dict[Timestamp, set[int]] = {}
        threshold = TS_ZERO
        while True:
            responses = yield from self._read_round(ctx)
            for response in responses:
                chunk = response.chunk
                attempt = attempt_of.setdefault(chunk.ts, len(attempt_of))
                oracle.push(chunk.block, attempt)
                indices_of.setdefault(chunk.ts, set()).add(chunk.index)
                threshold = max_timestamp(threshold, response.stored_ts)
            candidates = [
                ts
                for ts, indices in indices_of.items()
                if ts >= threshold and len(indices) >= k
            ]
            if not candidates:
                continue
            best = max(candidates)
            return oracle.done(attempt_of[best])
