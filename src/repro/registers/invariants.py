"""Invariant 1 (Appendix D), checkable on live simulations.

The adaptive algorithm's key safety invariant: *for any set S of n - f base
objects, some timestamp ts' at least as large as every storedTS in S has at
least k distinct pieces stored within S* — so a read sampling any quorum
can always reconstruct the latest completely-written (or a newer) value.

The checker duck-types over the coded register states (``vp``/``vf`` piece
sets with a ``stored_ts``, or the safe register's single ``chunk``) and
verifies the invariant over **every** (n - f)-subset of live objects —
exponential in f, fine at experiment scale, and exhaustive where the proof
quantifies universally.

A note on GC residue: under arbitrary asynchrony a write's GC RMW may take
effect *before* its own straggler update on the same object (both are
pending concurrently once the update round's quorum returned), leaving
that object empty. Lemma 8's ``(2f+k) D/k`` is therefore an upper bound on
residual storage, not an exact value; Invariant 1 is what actually
guarantees readability and is what this module checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.registers.base import Chunk, group_by_timestamp
from repro.registers.timestamps import TS_ZERO, Timestamp
from repro.sim.kernel import Simulation


def chunks_in_state(state) -> tuple[Chunk, ...]:
    """Extract the timestamped chunks from any register's object state."""
    if hasattr(state, "vp") and hasattr(state, "vf"):
        return tuple(state.vp) + tuple(state.vf)
    if hasattr(state, "vp"):
        return tuple(state.vp)
    if hasattr(state, "chunk"):
        return (state.chunk,)
    return ()


def stored_ts_of(state) -> Timestamp:
    """Extract an object's storedTS (TS_ZERO when it has none)."""
    return getattr(state, "stored_ts", TS_ZERO)


@dataclass
class Invariant1Report:
    """Outcome of checking Invariant 1 over all (n-f)-subsets."""

    ok: bool
    subsets_checked: int
    failing_subset: tuple[int, ...] | None = None

    def __bool__(self) -> bool:
        return self.ok


def check_invariant1(sim: Simulation) -> Invariant1Report:
    """Verify Invariant 1 on the simulation's current object states."""
    setup = sim.protocol.setup
    live = [bo for bo in sim.base_objects if not bo.crashed]
    quorum = setup.quorum
    if len(live) < quorum:
        # More than f crashes: the model's premise is void.
        return Invariant1Report(ok=True, subsets_checked=0)
    checked = 0
    for subset in itertools.combinations(live, quorum):
        checked += 1
        top_stored = max(stored_ts_of(bo.state) for bo in subset)
        chunks = [
            chunk for bo in subset for chunk in chunks_in_state(bo.state)
        ]
        grouped = group_by_timestamp(chunks)
        decodable = any(
            ts >= top_stored and len(indexed) >= setup.k
            for ts, indexed in grouped.items()
        )
        if not decodable:
            return Invariant1Report(
                ok=False,
                subsets_checked=checked,
                failing_subset=tuple(bo.bo_id for bo in subset),
            )
    return Invariant1Report(ok=True, subsets_checked=checked)
