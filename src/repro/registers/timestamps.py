"""Lexicographically ordered timestamps (Algorithm 1, line 1).

``TimeStamps = N x Pi`` with selectors ``num`` and ``client``, ordered
lexicographically — two writes by different clients that pick the same
number are tie-broken by client name, so timestamps are unique per write
(each client has at most one outstanding write and picks ``num`` strictly
above everything it has read).

Timestamps are meta-data: they carry no blocks, so the storage-cost meter
treats them as free (Definition 2 ignores meta-data size).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Timestamp:
    """A (num, client) pair; dataclass ordering is exactly lexicographic."""

    num: int
    client: str

    def next_for(self, client: str) -> "Timestamp":
        """Return the smallest timestamp by ``client`` above this one."""
        return Timestamp(self.num + 1, client)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ts({self.num},{self.client or '-'})"


#: The timestamp of the initial value ``v0``.
TS_ZERO = Timestamp(0, "")


def max_timestamp(*timestamps: Timestamp) -> Timestamp:
    """Return the largest of the given timestamps (``TS_ZERO`` if none)."""
    best = TS_ZERO
    for ts in timestamps:
        if ts > best:
            best = ts
    return best
