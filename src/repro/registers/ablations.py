"""Ablation variants of the adaptive register.

DESIGN.md calls out two load-bearing design choices in Section 5's
algorithm; each has an executable ablation:

* **the replica fallback** (`|Vp| < k` else `Vf`): removing it *is* the
  :class:`~repro.registers.coded_only.CodedOnlyRegister` — benchmark E9
  measures the resulting `Theta(cD)` blow-up;
* **the garbage-collection round** (lines 11-13 / 40-45): removed here.

Without GC nothing ever deletes stale chunks and ``storedTS`` never
advances (updates propagate only *observed* storedTS, which stays zero):
``Vp`` silts up with the first ``k`` writes' pieces forever, every later
write falls through to the replica path, and quiescent storage settles
near ``2nD`` instead of Lemma 8's ``nD/k`` — the GC round is what buys
the eventual optimum, not just tidiness. Reads remain regular (the
newest replica still wins), which makes the ablation a clean
storage-only comparison.
"""

from __future__ import annotations

from repro.registers.adaptive import AdaptiveRegister, UpdateArgs, update_rmw
from repro.registers.base import Chunk, OpGenerator
from repro.registers.timestamps import Timestamp
from repro.sim.actions import WaitResponses
from repro.sim.client import OperationContext


class AdaptiveNoGCRegister(AdaptiveRegister):
    """The Section 5 algorithm with the GC round deleted (ablation)."""

    name = "adaptive-no-gc"

    def write_gen(self, ctx: OperationContext, value: bytes) -> OpGenerator:
        """Rounds 1-2 of ``Write(v)`` only; no garbage collection."""
        oracle = ctx.new_encode_oracle()
        stored_ts, chunks = yield from self.read_value_round(ctx)
        max_num = max(
            stored_ts.num,
            max((chunk.ts.num for chunk in chunks), default=0),
        )
        ts = Timestamp(max_num + 1, ctx.client.name)
        replica = tuple(Chunk(ts, oracle.get(j)) for j in range(self.setup.k))
        handles = [
            ctx.trigger(
                bo_id,
                update_rmw,
                UpdateArgs(
                    ts=ts,
                    stored_ts=stored_ts,
                    piece=Chunk(ts, oracle.get(bo_id)),
                    replica=replica,
                    k=self.setup.k,
                ),
                label="update",
            )
            for bo_id in range(self.n)
        ]
        yield WaitResponses(handles, self.quorum)
        ctx.rounds += 1
        return "ok"
