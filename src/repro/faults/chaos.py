"""One chaos experiment, both transports, one verdict.

The glue the ``repro chaos`` CLI, the chaos test suite, and the fault
bench all share: run a seeded :class:`~repro.faults.plan.FaultPlan`
against the simulated deployment (:func:`run_sim_chaos`), against a real
loopback TCP cluster behind the fault proxy (:func:`run_tcp_chaos`), or
both (:func:`run_chaos_experiment`), and report per-transport
consistency verdicts plus the deterministic fault firing counts whose
equality is the cross-transport parity claim.

Both runners size their workload the same way (``writers * ops`` write
operations, ``readers * ops`` reads) and extend the run past the plan's
last timed event, so a saturating workload fires *every* scheduled link
fault and *every* window event in both worlds — making
``sim.firing_counts == tcp.firing_counts == plan.planned_counts() +
events`` an exact, seed-stable equality rather than a statistical one.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.simnet import faulty_system, run_chaos
from repro.faults.tcp import FaultProxyCluster
from repro.spec import check_linearizability, check_strong_regularity

#: Defaults sized so every link sees well over ``horizon`` messages.
DEFAULT_WRITERS = 2
DEFAULT_READERS = 2
DEFAULT_OPS = 3

#: Upper bound on post-workload saturation probe rounds: each round a
#: reachable link's sequence number advances unless its probe frame was
#: itself scheduled-dropped, so ``horizon`` rounds always suffice for a
#: healed plan; the slack covers probe frames lost to scheduled drops.
SATURATE_ROUNDS_PER_HORIZON = 3


def _padded(tag: str, size: int) -> bytes:
    return tag.encode().ljust(size, b"_")[:size]


@dataclass
class TransportReport:
    """What one transport did under the plan."""

    transport: str
    ops: int = 0
    failures: int = 0
    firing_counts: dict = field(default_factory=dict)
    window_drops: int = 0
    linearizable: bool = False
    strongly_regular: bool = False
    resent_messages: int = 0
    retry_timeouts: int = 0
    health: dict | None = None

    @property
    def consistent(self) -> bool:
        return self.linearizable and self.strongly_regular


@dataclass
class ChaosReport:
    """One seed's verdict across transports."""

    plan: FaultPlan
    sim: TransportReport | None = None
    tcp: TransportReport | None = None

    @property
    def parity_ok(self) -> bool:
        """Did both transports fire the identical fault schedule?"""
        if self.sim is None or self.tcp is None:
            return True  # single-transport run: nothing to compare
        return self.sim.firing_counts == self.tcp.firing_counts

    @property
    def ok(self) -> bool:
        reports = [r for r in (self.sim, self.tcp) if r is not None]
        return bool(reports) and self.parity_ok and all(
            r.consistent and r.failures == 0 for r in reports
        )

    def to_json(self) -> dict:
        def transport_json(report: TransportReport | None):
            if report is None:
                return None
            return {
                "ops": report.ops,
                "failures": report.failures,
                "firing_counts": report.firing_counts,
                "window_drops": report.window_drops,
                "linearizable": report.linearizable,
                "strongly_regular": report.strongly_regular,
                "resent_messages": report.resent_messages,
                "retry_timeouts": report.retry_timeouts,
            }

        return {
            "seed": self.plan.seed,
            "plan": self.plan.describe(),
            "sim": transport_json(self.sim),
            "tcp": transport_json(self.tcp),
            "parity_ok": self.parity_ok,
            "ok": self.ok,
        }


# -------------------------------------------------------------- simulated


def run_sim_chaos(
    plan: FaultPlan,
    data_size_bytes: int,
    *,
    writers: int = DEFAULT_WRITERS,
    readers: int = DEFAULT_READERS,
    ops: int = DEFAULT_OPS,
) -> TransportReport:
    """The plan against the simulated message network.

    Each of the ``writers * ops`` writes and ``readers * ops`` reads is a
    one-shot simulated client (the msgnet model: one operation per
    process), all concurrent under the fair scheduler.
    """
    system, injector = faulty_system(plan, data_size_bytes)
    for round_number in range(ops):
        for index in range(writers):
            system.add_writer(
                f"w{index}x{round_number}",
                _padded(f"w{index}r{round_number}", data_size_bytes),
            )
        for index in range(readers):
            system.add_reader(f"r{index}x{round_number}")
    stats = run_chaos(system)
    history = system.history()
    return TransportReport(
        transport="sim",
        ops=len(system.ops),
        failures=system.pending_ops,
        firing_counts=stats.firing_counts,
        window_drops=stats.window_drops,
        linearizable=check_linearizability(history).ok,
        strongly_regular=check_strong_regularity(history).ok,
        resent_messages=stats.resent_messages,
        retry_timeouts=stats.resend_rounds,
    )


# -------------------------------------------------------------------- TCP


async def _saturate_scheduled_faults(
    proxies: FaultProxyCluster,
    injector: FaultInjector,
    *,
    tick_s: float,
    request_timeout: float,
) -> bool:
    """Drive probe traffic through the proxies until the plan saturates.

    One framed PING round-trip per reachable replica per round consumes
    one ``c->sN`` and one ``sN->c`` sequence number, so every scheduled
    link fault still pending inside the horizon fires within a bounded
    number of rounds. Probe frames past the horizon are clean forwards —
    extra rounds can never overshoot the planned counts. Replicas inside
    a still-active (never-healing) window are skipped: their pending
    faults are unreachable on any transport. Returns whether the plan
    saturated.
    """
    from repro.msgnet import protocol
    from repro.service.client import probe

    probe_timeout = max(8 * tick_s, request_timeout)
    max_rounds = SATURATE_ROUNDS_PER_HORIZON * injector.plan.horizon
    for round_number in range(max_rounds):
        proxies.advance_clock()
        if injector.saturated():
            return True
        for name, (host, port) in sorted(proxies.endpoints.items()):
            if injector.unavailable(name):
                continue
            await probe(
                host, port,
                (protocol.PING, ("chaos-saturate", round_number, name)),
                protocol.REPLY_PONG,
                timeout=probe_timeout,
            )
    proxies.advance_clock()
    return injector.saturated()


async def run_tcp_chaos(
    plan: FaultPlan,
    data_size_bytes: int,
    state_dir: str | Path,
    *,
    writers: int = DEFAULT_WRITERS,
    readers: int = DEFAULT_READERS,
    ops: int = DEFAULT_OPS,
    tick_s: float = 0.02,
    request_timeout: float = 0.25,
    op_deadline: float = 30.0,
) -> TransportReport:
    """The same plan over real sockets: loopback cluster + fault proxy.

    Clients get the resilient configuration — seeded exponential backoff
    (jitter seed = plan seed), a per-operation deadline generous enough
    to outlive every window, and health tracking — so the run exercises
    exactly the retry machinery the plan is designed to stress.
    """
    from repro.service.client import merge_histories
    from repro.service.loopback import LoopbackCluster
    from repro.service.retry import BackoffPolicy

    injector = FaultInjector(plan)
    report = TransportReport(transport="tcp")
    async with LoopbackCluster(
        plan.f, data_size_bytes, state_dir
    ) as cluster:
        async with FaultProxyCluster(
            cluster.endpoints, injector, tick_s=tick_s
        ) as proxies:
            def client(name: str):
                from repro.service.client import ServiceClient

                return ServiceClient(
                    name, proxies.endpoints, plan.f, data_size_bytes,
                    timeout=request_timeout,
                    op_deadline=op_deadline,
                    backoff=BackoffPolicy(
                        base=request_timeout, cap=8 * request_timeout,
                        seed=plan.seed,
                    ),
                )

            writer_clients = [client(f"w{i}") for i in range(writers)]
            reader_clients = [client(f"r{i}") for i in range(readers)]

            async def write_loop(handle):
                for round_number in range(ops):
                    try:
                        await handle.write(_padded(
                            f"{handle.name}r{round_number}",
                            data_size_bytes,
                        ))
                    except Exception:
                        report.failures += 1

            async def read_loop(handle):
                for _ in range(ops):
                    try:
                        await handle.read()
                    except Exception:
                        report.failures += 1

            await asyncio.gather(
                *(write_loop(handle) for handle in writer_clients),
                *(read_loop(handle) for handle in reader_clients),
            )
            # Outlive the schedule: every timed event must fire before
            # the proxy stops, or event-count parity would depend on how
            # fast the workload happened to finish.
            events = plan.timed_events()
            if events:
                last_tick = events[-1][0]
                while proxies.current_tick() <= last_tick:
                    await asyncio.sleep(tick_s)
                proxies.advance_clock()
            # Saturate the scheduled link faults. Window drops consume no
            # link sequence numbers, and over wall-clock ticks a window
            # can swallow enough of the workload's traffic that a reply
            # link ends short of its horizon — leaving scheduled faults
            # at the unreached tail unfired (the seed-7 parity break:
            # s1's partition left s1->c at seq 7, one short of the delay
            # scheduled at seq 8). The simulated runner keeps driving
            # traffic until every operation returns; the TCP twin of
            # that guarantee is to keep probing until every scheduled
            # fault has fired.
            await _saturate_scheduled_faults(
                proxies, injector, tick_s=tick_s,
                request_timeout=request_timeout,
            )
            clients = writer_clients + reader_clients
            history = merge_histories(clients)
            report.health = {
                handle.name: handle.health.snapshot()
                for handle in clients
            }
            report.resent_messages = sum(
                handle.stats.resent_messages for handle in clients
            )
            report.retry_timeouts = sum(
                handle.stats.timeouts for handle in clients
            )
            for handle in clients:
                await handle.close()
    completed = [op for op in history.ops if op.return_time is not None]
    history = type(history)(completed, history.v0)
    report.ops = len(completed)
    report.firing_counts = injector.firing_counts()
    report.window_drops = injector.total_window_drops()
    report.linearizable = check_linearizability(history).ok
    report.strongly_regular = check_strong_regularity(history).ok
    return report


# ------------------------------------------------------------- experiment


def run_chaos_experiment(
    plan: FaultPlan,
    data_size_bytes: int,
    state_dir: str | Path,
    *,
    transport: str = "both",
    writers: int = DEFAULT_WRITERS,
    readers: int = DEFAULT_READERS,
    ops: int = DEFAULT_OPS,
    tick_s: float = 0.02,
) -> ChaosReport:
    """Run the plan on the chosen transport(s) and bundle the verdict."""
    if transport not in ("sim", "tcp", "both"):
        raise ValueError(f"unknown transport {transport!r}")
    report = ChaosReport(plan=plan)
    if transport in ("sim", "both"):
        report.sim = run_sim_chaos(
            plan, data_size_bytes,
            writers=writers, readers=readers, ops=ops,
        )
    if transport in ("tcp", "both"):
        report.tcp = asyncio.run(run_tcp_chaos(
            plan, data_size_bytes, state_dir,
            writers=writers, readers=readers, ops=ops, tick_s=tick_s,
        ))
    return report


__all__ = [
    "ChaosReport",
    "TransportReport",
    "run_chaos_experiment",
    "run_sim_chaos",
    "run_tcp_chaos",
]
