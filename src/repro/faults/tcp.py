"""An in-process TCP fault proxy: the same fault plan over real sockets.

A :class:`FaultProxyCluster` stands one small asyncio proxy in front of
every replica endpoint. Clients connect to the proxy ports instead of the
real ones; each framed protocol message is intercepted (using the same
length-prefixed framing as the service itself) and submitted to the
shared :class:`~repro.faults.plan.FaultInjector`:

* ``c->sN`` frames (client requests into replica ``sN``) and ``sN->c``
  frames (its replies) consume per-link sequence numbers exactly like
  :class:`~repro.faults.simnet.FaultyNetwork`, so a seeded plan fires the
  same scheduled drop/delay/duplicate/reorder events over sockets as in
  simulation — the parity the chaos suite asserts;
* partition and crash windows black-hole all traffic for the affected
  replica (frames silently dropped — the nastiest failure mode for a
  client, indistinguishable from a dead host);
* replica slowdown sleeps before forwarding requests into the slow
  replica, creating real head-of-line latency.

Ticks map to wall-clock via ``tick_s``; a background ticker advances the
injector clock even when no traffic flows, so windows open and heal on
schedule. Payloads are never decoded — the proxy is framing-aware but
content-agnostic, which keeps it honest: it can only do to messages what
a network can.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING

from repro.errors import WireError
from repro.faults.plan import FaultInjector, client_link, server_link
from repro.service.framing import read_frame, write_frame

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.service.client import Endpoints


class _Hold:
    """One reorder-held frame waiting to be overtaken."""

    __slots__ = ("frame", "released")

    def __init__(self, frame: bytes) -> None:
        self.frame = frame
        self.released = False


class FaultProxyCluster:
    """Per-replica TCP interceptors realising one seeded fault plan."""

    def __init__(
        self,
        endpoints: "Endpoints",
        injector: FaultInjector,
        *,
        tick_s: float = 0.05,
        host: str = "127.0.0.1",
    ) -> None:
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        self.upstream = dict(endpoints)
        self.injector = injector
        self.tick_s = tick_s
        self.host = host
        self.proxy_ports: dict[str, int] = {}
        self._servers: dict[str, asyncio.Server] = {}
        self._tasks: set[asyncio.Task] = set()
        self._holds: dict[str, _Hold] = {}
        self._ticker: asyncio.Task | None = None
        self._started_at: float | None = None
        self._closing = False

    # ------------------------------------------------------------- clock

    def current_tick(self) -> int:
        if self._started_at is None:
            return 0
        return int((time.monotonic() - self._started_at) / self.tick_s)

    def advance_clock(self) -> None:
        """Sync the injector to the wall clock (tests/drivers may call)."""
        self.injector.advance_to(self.current_tick())

    async def _tick_forever(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.tick_s / 2)
                self.advance_clock()
        except asyncio.CancelledError:
            pass

    # --------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._started_at = time.monotonic()
        for name in self.upstream:
            server = await asyncio.start_server(
                self._accept_for(name), self.host, 0
            )
            self._servers[name] = server
            self.proxy_ports[name] = server.sockets[0].getsockname()[1]
        self._ticker = asyncio.ensure_future(self._tick_forever())

    async def stop(self) -> None:
        self._closing = True
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
        for server in self._servers.values():
            server.close()
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for server in self._servers.values():
            await server.wait_closed()

    @property
    def endpoints(self) -> "Endpoints":
        """What clients should connect to: the proxy-fronted ports."""
        return {
            name: (self.host, port)
            for name, port in self.proxy_ports.items()
        }

    async def __aenter__(self) -> "FaultProxyCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------- connections

    def _accept_for(self, name: str):
        async def accept(reader, writer):
            task = asyncio.current_task()
            self._tasks.add(task)
            try:
                await self._relay(name, reader, writer)
            except asyncio.CancelledError:
                pass  # proxy shutdown — the stream layer logs otherwise
            finally:
                self._tasks.discard(task)

        return accept

    async def _relay(self, name, client_reader, client_writer):
        host, port = self.upstream[name]
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                host, port
            )
        except OSError:
            client_writer.close()
            return
        inbound = asyncio.ensure_future(self._pump(
            client_reader, upstream_writer, client_link(name), name,
            into_server=True,
        ))
        outbound = asyncio.ensure_future(self._pump(
            upstream_reader, client_writer, server_link(name), name,
            into_server=False,
        ))
        self._tasks.update((inbound, outbound))
        try:
            done, pending = await asyncio.wait(
                {inbound, outbound}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        finally:
            self._tasks.difference_update((inbound, outbound))
            for writer in (upstream_writer, client_writer):
                writer.close()

    # -------------------------------------------------------------- pump

    async def _pump(self, reader, writer, link, server, *, into_server):
        """Forward frames one way, applying the injector's decisions."""
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except WireError:
                    break
                if frame is None:
                    break
                self.advance_clock()
                if self.injector.unavailable(server):
                    self.injector.count_window_drop(server)
                    continue
                decision = self.injector.on_send(link)
                held = self._holds.pop(link, None)
                kind = decision.kind if decision is not None else None
                if kind == "drop":
                    pass
                elif kind == "duplicate":
                    await self._forward(writer, lock, frame, server,
                                        into_server)
                    await self._forward(writer, lock, frame, server,
                                        into_server)
                elif kind == "delay":
                    self._spawn(self._forward_later(
                        writer, lock, frame, decision.ticks, server,
                        into_server,
                    ))
                elif kind == "reorder":
                    hold = _Hold(frame)
                    self._holds[link] = hold
                    self._spawn(self._release_hold_later(
                        writer, lock, link, hold, decision.ticks, server,
                        into_server,
                    ))
                else:
                    await self._forward(writer, lock, frame, server,
                                        into_server)
                if held is not None and not held.released:
                    held.released = True
                    await self._forward(writer, lock, held.frame, server,
                                        into_server)
        except (ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError):
            pass

    async def _forward(self, writer, lock, frame, server, into_server):
        if writer.is_closing():
            return
        if into_server:
            slow = self.injector.slowdown_ticks(server)
            if slow > 0:
                await asyncio.sleep(slow * self.tick_s)
        try:
            async with lock:
                if writer.is_closing():
                    return
                await write_frame(writer, frame)
        except (ConnectionResetError, BrokenPipeError, OSError):
            writer.close()

    async def _forward_later(self, writer, lock, frame, ticks, server,
                             into_server):
        try:
            await asyncio.sleep(ticks * self.tick_s)
            if self.injector.unavailable(server):
                self.injector.count_window_drop(server)
                return
            await self._forward(writer, lock, frame, server, into_server)
        except asyncio.CancelledError:
            pass

    async def _release_hold_later(self, writer, lock, link, hold, ticks,
                                  server, into_server):
        """Tick fallback: a held frame nothing overtakes still arrives."""
        try:
            await asyncio.sleep(ticks * self.tick_s)
            if hold.released:
                return
            hold.released = True
            if self._holds.get(link) is hold:
                del self._holds[link]
            await self._forward(writer, lock, hold.frame, server,
                                into_server)
        except asyncio.CancelledError:
            pass

    def _spawn(self, coroutine) -> None:
        if self._closing:
            coroutine.close()
            return
        task = asyncio.ensure_future(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)


__all__ = ["FaultProxyCluster"]
