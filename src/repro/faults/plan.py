"""Seeded, deterministic fault plans — one spec, both transports.

A :class:`FaultPlan` is plain data describing every fault a run may
suffer: per-link message **drop / delay / duplicate / reorder** rates,
per-replica **slowdown**, **partitions** with heal times, and
**crash windows** with revive times. It extends the SHA-256 derivation of
:func:`repro.sim.failures.seeded_crash_schedule` (same
:func:`~repro.sim.failures.derive_draw` primitive, its own ``"fault"``
domain), so the whole plan — which message on which link suffers which
fault — is a pure function of ``(seed, configuration)``, stable across
Python versions and processes.

Determinism is what makes the plan *portable across transports*. The
plan compiles each directed link (``c->s0`` for client traffic into
replica ``s0``, ``s0->c`` for its replies) into a schedule keyed by the
link's **message sequence number**: "the 3rd message into ``s0`` is
dropped, the 5th is delayed 4 ticks". A :class:`FaultInjector` realises
one run of the plan: the simulated wrapper
(:class:`repro.faults.simnet.FaultyNetwork`) and the TCP proxy
(:class:`repro.faults.tcp.FaultProxyCluster`) both ask it
:meth:`~FaultInjector.on_send` per message and
:meth:`~FaultInjector.advance_to` per clock tick, so the same seed fires
the same fault schedule in simulation and over real sockets — the parity
the chaos suite (``tests/faults/``) asserts on
:meth:`~FaultInjector.firing_counts`.

Every scheduled link fault lives inside the plan's ``horizon`` (the
first ``horizon`` messages per link) and every timed window heals, so a
plan is **finite** by construction: after :meth:`FaultPlan.heals_by`
ticks the network is fault-free and blocked operations can complete —
the liveness half of the chaos suite.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import FaultPlanError
from repro.sim.failures import derive_draw

#: Resolution of fault rates: rates are compared against draws in
#: ``[0, RATE_SCALE)``, so the smallest non-zero rate is 1e-6.
RATE_SCALE = 1_000_000

#: The four per-message fault kinds, in decision precedence order.
LINK_FAULT_KINDS = ("drop", "delay", "duplicate", "reorder")

#: Timed (tick-scheduled) event kinds the injector counts.
TIMED_EVENT_KINDS = ("partition", "heal", "crash", "revive")


def _fault_draw(seed: int, tag: str, modulus: int) -> int:
    return derive_draw(seed, tag, modulus, domain="fault")


# ------------------------------------------------------------------ links


def client_link(server: str) -> str:
    """The directed link carrying client requests *into* ``server``."""
    return f"c->{server}"


def server_link(server: str) -> str:
    """The directed link carrying ``server``'s replies back to clients."""
    return f"{server}->c"


@dataclass(frozen=True)
class LinkFaults:
    """Fault rates for one directed link (all in ``[0, 1]``).

    At most one fault fires per message (a single draw against the
    cumulative rate segments, precedence drop > delay > duplicate >
    reorder), so ``drop + delay + duplicate + reorder`` must stay <= 1.
    ``delay_ticks`` / ``reorder_ticks`` bound how long a delayed or
    held-for-reorder message is parked.
    """

    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay_ticks: int = 4
    reorder_ticks: int = 2

    def validate(self) -> None:
        rates = (self.drop, self.delay, self.duplicate, self.reorder)
        for kind, rate in zip(LINK_FAULT_KINDS, rates):
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(
                    f"link {kind} rate {rate} outside [0, 1]"
                )
        if sum(rates) > 1.0 + 1e-9:
            raise FaultPlanError(
                f"link fault rates sum to {sum(rates):.3f} > 1 "
                "(one draw decides at most one fault per message)"
            )
        if self.delay_ticks < 1 or self.reorder_ticks < 1:
            raise FaultPlanError("delay/reorder park ticks must be >= 1")

    @property
    def quiet(self) -> bool:
        return not (self.drop or self.delay or self.duplicate or self.reorder)


@dataclass(frozen=True)
class Partition:
    """Servers unreachable from clients during ``[start, heal)`` ticks."""

    servers: tuple[str, ...]
    start: int
    heal: int

    def validate(self, replicas: tuple[str, ...], f: int) -> None:
        unknown = set(self.servers) - set(replicas)
        if unknown:
            raise FaultPlanError(f"partition names unknown replicas {unknown}")
        if not self.servers:
            raise FaultPlanError("partition needs at least one server")
        if len(self.servers) > f:
            raise FaultPlanError(
                f"partition isolates {len(self.servers)} replicas, "
                f"budget is f={f}"
            )
        if not 0 <= self.start < self.heal:
            raise FaultPlanError(
                f"partition window [{self.start}, {self.heal}) is empty "
                "or negative"
            )


@dataclass(frozen=True)
class CrashWindow:
    """One replica black-holed during ``[crash, revive)`` ticks.

    The network-level view of a crash: *every* message to or from the
    replica is dropped for the window. (Real process death and journal
    recovery are the daemon suite's territory; at the transport seam the
    two are indistinguishable.) ``revive=None`` never heals — only legal
    while the ``<= f`` budget still holds with it counted as permanently
    down.
    """

    server: str
    crash: int
    revive: int | None

    def validate(self, replicas: tuple[str, ...], f: int) -> None:
        if self.server not in replicas:
            raise FaultPlanError(f"crash window names unknown {self.server!r}")
        if self.crash < 0:
            raise FaultPlanError("crash tick must be >= 0")
        if self.revive is not None and self.revive <= self.crash:
            raise FaultPlanError("revive tick must follow the crash tick")


@dataclass(frozen=True)
class Decision:
    """One scheduled fault on one message: what fires, how long it parks."""

    kind: str
    ticks: int = 0


# ------------------------------------------------------------------- plan


@dataclass(frozen=True)
class FaultPlan:
    """The complete, deterministic fault specification for one run.

    ``links`` maps link patterns to :class:`LinkFaults`; resolution for a
    concrete link tries the exact name (``"c->s0"``), then the direction
    wildcard (``"c->*"`` / ``"*->c"``), then the global ``"*"``. All
    scheduled link faults hit only the first ``horizon`` messages per
    link; partitions and crash windows are tick-scheduled and must keep
    at most ``f`` replicas simultaneously unavailable.
    """

    seed: int
    replicas: tuple[str, ...]
    f: int
    horizon: int = 8
    links: Mapping[str, LinkFaults] = field(default_factory=dict)
    slowdowns: Mapping[str, int] = field(default_factory=dict)
    partitions: tuple[Partition, ...] = ()
    crashes: tuple[CrashWindow, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "replicas", tuple(self.replicas))
        object.__setattr__(self, "links", dict(self.links))
        object.__setattr__(self, "slowdowns", dict(self.slowdowns))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        self.validate()

    # ------------------------------------------------------------ checks

    def validate(self) -> None:
        if not self.replicas:
            raise FaultPlanError("plan needs at least one replica")
        if self.f < 1:
            raise FaultPlanError("f must be >= 1")
        if self.horizon < 1:
            raise FaultPlanError("horizon must be >= 1")
        for spec in self.links.values():
            spec.validate()
        known = {"*"}
        for server in self.replicas:
            known.update((client_link(server), server_link(server)))
        known.update(("c->*", "*->c"))
        unknown = set(self.links) - known
        if unknown:
            raise FaultPlanError(f"link patterns match nothing: {unknown}")
        for server, ticks in self.slowdowns.items():
            if server not in self.replicas:
                raise FaultPlanError(f"slowdown names unknown {server!r}")
            if ticks < 1:
                raise FaultPlanError("slowdown ticks must be >= 1")
        for partition in self.partitions:
            partition.validate(self.replicas, self.f)
        for crash in self.crashes:
            crash.validate(self.replicas, self.f)
        self._check_budget()

    def _check_budget(self) -> None:
        """At every tick at most ``f`` replicas may be unavailable."""
        edges = set()
        for partition in self.partitions:
            edges.update((partition.start, partition.heal))
        for crash in self.crashes:
            edges.add(crash.crash)
            if crash.revive is not None:
                edges.add(crash.revive)
        for tick in sorted(edges):
            down = self.unavailable_at(tick)
            if len(down) > self.f:
                raise FaultPlanError(
                    f"{len(down)} replicas unavailable at tick {tick} "
                    f"({sorted(down)}), budget is f={self.f}"
                )

    def unavailable_at(self, tick: int) -> set[str]:
        """Replica names black-holed (partitioned or crashed) at ``tick``."""
        down = set()
        for partition in self.partitions:
            if partition.start <= tick < partition.heal:
                down.update(partition.servers)
        for crash in self.crashes:
            if crash.crash <= tick and (
                crash.revive is None or tick < crash.revive
            ):
                down.add(crash.server)
        return down

    # ------------------------------------------------------- compilation

    def link_spec(self, link: str) -> LinkFaults:
        """Resolve the fault rates governing one concrete link."""
        if link in self.links:
            return self.links[link]
        wildcard = "c->*" if link.startswith("c->") else "*->c"
        if wildcard in self.links:
            return self.links[wildcard]
        return self.links.get("*", LinkFaults())

    def all_links(self) -> tuple[str, ...]:
        links = []
        for server in self.replicas:
            links.append(client_link(server))
            links.append(server_link(server))
        return tuple(links)

    def compile(self) -> dict[str, dict[int, Decision]]:
        """Per-link schedules: ``{link: {seq: Decision}}`` (seq from 1).

        One draw per ``(link, seq)`` decides which fault (if any) hits
        that message, by cumulative rate segments — so firing counts per
        kind concentrate around ``rate * horizon`` while staying an
        exact, portable function of the seed.
        """
        schedules: dict[str, dict[int, Decision]] = {}
        for link in self.all_links():
            spec = self.link_spec(link)
            schedule: dict[int, Decision] = {}
            if not spec.quiet:
                for seq in range(1, self.horizon + 1):
                    draw = _fault_draw(self.seed, f"{link}:{seq}", RATE_SCALE)
                    threshold = 0.0
                    for kind, rate in (
                        ("drop", spec.drop),
                        ("delay", spec.delay),
                        ("duplicate", spec.duplicate),
                        ("reorder", spec.reorder),
                    ):
                        threshold += rate
                        if draw < int(threshold * RATE_SCALE):
                            ticks = 0
                            if kind == "delay":
                                ticks = 1 + _fault_draw(
                                    self.seed, f"delay:{link}:{seq}",
                                    spec.delay_ticks,
                                )
                            elif kind == "reorder":
                                ticks = spec.reorder_ticks
                            schedule[seq] = Decision(kind, ticks)
                            break
            schedules[link] = schedule
        return schedules

    def planned_counts(self) -> dict[str, int]:
        """Scheduled link faults by kind — what a saturating run fires."""
        counts = Counter({kind: 0 for kind in LINK_FAULT_KINDS})
        for schedule in self.compile().values():
            for decision in schedule.values():
                counts[decision.kind] += 1
        return dict(counts)

    def timed_events(self) -> list[tuple[int, str, str]]:
        """All tick-scheduled events as ``(tick, kind, subject)``."""
        events = []
        for partition in self.partitions:
            subject = "+".join(partition.servers)
            events.append((partition.start, "partition", subject))
            events.append((partition.heal, "heal", subject))
        for crash in self.crashes:
            events.append((crash.crash, "crash", crash.server))
            if crash.revive is not None:
                events.append((crash.revive, "revive", crash.server))
        return sorted(events)

    def heals_by(self) -> int:
        """First tick with no active window (scheduled faults may remain
        until each link's ``horizon`` messages have passed)."""
        ticks = [0]
        ticks.extend(partition.heal for partition in self.partitions)
        ticks.extend(
            crash.revive for crash in self.crashes
            if crash.revive is not None
        )
        return max(ticks)

    @property
    def quiet(self) -> bool:
        """Does this plan inject nothing at all (the clean baseline)?"""
        return (
            all(spec.quiet for spec in self.links.values())
            and not self.slowdowns
            and not self.partitions
            and not self.crashes
        )

    # ------------------------------------------------------------- JSON

    def to_json(self) -> dict:
        return {
            "version": 1,
            "seed": self.seed,
            "replicas": list(self.replicas),
            "f": self.f,
            "horizon": self.horizon,
            "links": {
                pattern: {
                    "drop": spec.drop, "delay": spec.delay,
                    "duplicate": spec.duplicate, "reorder": spec.reorder,
                    "delay_ticks": spec.delay_ticks,
                    "reorder_ticks": spec.reorder_ticks,
                }
                for pattern, spec in sorted(self.links.items())
            },
            "slowdowns": dict(sorted(self.slowdowns.items())),
            "partitions": [
                {"servers": list(p.servers), "start": p.start, "heal": p.heal}
                for p in self.partitions
            ],
            "crashes": [
                {"server": c.server, "crash": c.crash, "revive": c.revive}
                for c in self.crashes
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        if payload.get("version") != 1:
            raise FaultPlanError(
                f"unsupported fault-plan version {payload.get('version')!r}"
            )
        try:
            return cls(
                seed=payload["seed"],
                replicas=tuple(payload["replicas"]),
                f=payload["f"],
                horizon=payload["horizon"],
                links={
                    pattern: LinkFaults(**spec)
                    for pattern, spec in payload["links"].items()
                },
                slowdowns=dict(payload["slowdowns"]),
                partitions=tuple(
                    Partition(tuple(p["servers"]), p["start"], p["heal"])
                    for p in payload["partitions"]
                ),
                crashes=tuple(
                    CrashWindow(c["server"], c["crash"], c["revive"])
                    for c in payload["crashes"]
                ),
            )
        except (KeyError, TypeError) as error:
            raise FaultPlanError(
                f"malformed fault-plan JSON: {error}"
            ) from error

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "FaultPlan":
        from pathlib import Path

        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"{path}: corrupt fault plan") from error
        return cls.from_json(payload)

    def describe(self) -> str:
        """One-line summary for ``repro status`` / ``doctor``."""
        parts = [f"seed={self.seed}", f"horizon={self.horizon}"]
        active = {
            kind: count
            for kind, count in self.planned_counts().items() if count
        }
        if active:
            parts.append(
                "link[" + " ".join(
                    f"{kind}:{count}" for kind, count in sorted(active.items())
                ) + "]"
            )
        if self.slowdowns:
            parts.append(f"slow={','.join(sorted(self.slowdowns))}")
        if self.partitions:
            parts.append(f"partitions={len(self.partitions)}")
        if self.crashes:
            parts.append(f"crash-windows={len(self.crashes)}")
        if len(parts) == 2:
            parts.append("quiet")
        return " ".join(parts)


# --------------------------------------------------------------- injector


class FaultInjector:
    """One run's realisation of a :class:`FaultPlan`.

    Both transports drive an injector the same way:

    * :meth:`on_send` once per message on a fault-eligible link — returns
      the scheduled :class:`Decision` (or ``None``) and counts the fire;
    * :meth:`advance_to` as the run's clock passes ticks — fires due
      timed events (partition/heal/crash/revive) exactly once each;
    * :meth:`unavailable` per message to honour active windows (those
      drops are *traffic-dependent*, so they are tallied separately in
      ``window_drops`` and excluded from the parity counters).

    :meth:`firing_counts` is the deterministic summary the sim-vs-TCP
    parity suite compares.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.schedules = plan.compile()
        self.tick = 0
        self.fired: Counter = Counter()
        self.fired_by_link: dict[str, Counter] = {
            link: Counter() for link in self.schedules
        }
        self.window_drops: Counter = Counter()
        self.event_log: list[tuple[int, str, str]] = []
        self._seq: Counter = Counter()
        self._pending_events = list(plan.timed_events())

    # ---------------------------------------------------------- messages

    def next_seq(self, link: str) -> int:
        self._seq[link] += 1
        return self._seq[link]

    def on_send(self, link: str) -> Decision | None:
        """Decide the fate of the next message on ``link`` (counted)."""
        seq = self.next_seq(link)
        decision = self.schedules.get(link, {}).get(seq)
        if decision is not None:
            self.fired[decision.kind] += 1
            self.fired_by_link[link][decision.kind] += 1
        return decision

    def link_seq(self, link: str) -> int:
        """Messages seen so far on ``link``."""
        return self._seq[link]

    def saturated(self) -> bool:
        """Has every scheduled link fault already fired?"""
        planned = self.plan.planned_counts()
        return all(
            self.fired.get(kind, 0) >= count
            for kind, count in planned.items()
        )

    # ------------------------------------------------------------- time

    def advance_to(self, tick: int) -> list[tuple[int, str, str]]:
        """Move the clock forward; fire (and return) due timed events."""
        if tick < self.tick:
            return []
        self.tick = tick
        fired = []
        while self._pending_events and self._pending_events[0][0] <= tick:
            event = self._pending_events.pop(0)
            self.event_log.append(event)
            self.fired[f"event:{event[1]}"] += 1
            fired.append(event)
        return fired

    def next_event_tick(self) -> int | None:
        return self._pending_events[0][0] if self._pending_events else None

    def unavailable(self, server: str) -> bool:
        """Is ``server`` inside an active partition or crash window?"""
        return server in self.plan.unavailable_at(self.tick)

    def count_window_drop(self, server: str) -> None:
        self.window_drops[server] += 1

    def slowdown_ticks(self, server: str) -> int:
        return self.plan.slowdowns.get(server, 0)

    # ---------------------------------------------------------- summary

    def firing_counts(self) -> dict[str, int]:
        """The deterministic parity summary: scheduled link faults by
        kind plus timed events fired, window drops excluded."""
        counts = {kind: self.fired.get(kind, 0) for kind in LINK_FAULT_KINDS}
        for kind in TIMED_EVENT_KINDS:
            counts[f"event:{kind}"] = self.fired.get(f"event:{kind}", 0)
        return counts

    def total_window_drops(self) -> int:
        return sum(self.window_drops.values())


# ---------------------------------------------------------------- seeding


#: Named fault modes ``seeded_fault_plan`` understands, alone or joined
#: with ``+`` (``"drop+delay"``). ``"chaos"`` is everything at once.
FAULT_PROFILES = (
    "drop", "delay", "duplicate", "reorder", "slow", "partition", "crash",
    "chaos",
)


def seeded_fault_plan(
    seed: int,
    *,
    replicas: Iterable[str],
    f: int,
    profile: str = "chaos",
    rate: float = 0.25,
    horizon: int = 8,
    start: int = 10,
    window: int = 25,
    slow_ticks: int = 3,
) -> FaultPlan:
    """Derive a complete :class:`FaultPlan` from a seed and a profile.

    Victim replicas (for slowdown, partition, and crash windows) and
    window offsets are seed-derived exactly like
    :func:`~repro.sim.failures.seeded_crash_schedule` derives crash
    victims, so two runs of the same ``(seed, profile)`` produce the same
    plan. Message-fault profiles put ``rate`` on every link; windowed
    profiles open at ``start`` plus seed jitter and heal after
    ``window`` ticks. The crash budget ``f`` is validated by the plan.
    """
    kinds = set(profile.split("+")) if profile else set()
    if "chaos" in kinds:
        kinds = set(FAULT_PROFILES) - {"chaos"}
    unknown = kinds - set(FAULT_PROFILES)
    if unknown:
        raise FaultPlanError(
            f"unknown fault profile(s) {sorted(unknown)}; "
            f"choose from {FAULT_PROFILES}"
        )
    replicas = tuple(replicas)
    if not replicas:
        raise FaultPlanError("seeded_fault_plan needs replica names")
    message_kinds = [
        kind for kind in ("drop", "delay", "duplicate", "reorder")
        if kind in kinds
    ]
    links: dict[str, LinkFaults] = {}
    if message_kinds:
        share = rate / len(message_kinds)
        links["*"] = LinkFaults(**{kind: share for kind in message_kinds})

    def pick(tag: str, pool: tuple[str, ...]) -> str:
        return pool[_fault_draw(seed, tag, len(pool))]

    slowdowns: dict[str, int] = {}
    if "slow" in kinds:
        slowdowns[pick("slow-victim", replicas)] = slow_ticks

    partitions: tuple[Partition, ...] = ()
    crashes: tuple[CrashWindow, ...] = ()
    jitter = _fault_draw(seed, "window-jitter", max(window // 3, 1))
    if "partition" in kinds:
        victims = []
        pool = list(replicas)
        for slot in range(min(f, len(replicas))):
            index = _fault_draw(seed, f"partition{slot}", len(pool))
            victims.append(pool.pop(index))
        partitions = (Partition(
            tuple(victims), start + jitter, start + jitter + window,
        ),)
    if "crash" in kinds:
        # Crash strictly after any partition heals, so the two windows
        # never overlap and the <= f budget holds for every profile mix.
        crash_start = start + jitter + (
            window + 1 if "partition" in kinds else 0
        )
        pool = tuple(
            name for name in replicas
            if not any(name in p.servers for p in partitions)
        ) or replicas
        crashes = (CrashWindow(
            pick("crash-victim", pool), crash_start, crash_start + window,
        ),)
    return FaultPlan(
        seed=seed,
        replicas=replicas,
        f=f,
        horizon=horizon,
        links=links,
        slowdowns=slowdowns,
        partitions=partitions,
        crashes=crashes,
    )


def clean_plan(replicas: Iterable[str], f: int) -> FaultPlan:
    """The fault-free plan (baseline runs through the same machinery)."""
    return FaultPlan(seed=0, replicas=tuple(replicas), f=f)


__all__ = [
    "CrashWindow",
    "Decision",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultPlan",
    "LINK_FAULT_KINDS",
    "LinkFaults",
    "Partition",
    "RATE_SCALE",
    "clean_plan",
    "client_link",
    "seeded_fault_plan",
    "server_link",
]
