"""Seeded fault injection for both transports (`repro.faults`).

One :class:`FaultPlan` — a pure function of its seed — describes message
drops/delays/duplicates/reorders per link, replica slowdowns, partitions,
and crash windows. The same plan installs on the simulated message
network (:class:`FaultyNetwork` + :func:`run_chaos`) and in front of the
real TCP service (:class:`FaultProxyCluster`), firing the same
deterministic schedule in both worlds. See ``docs/FAULTS.md``.
"""

from repro.faults.chaos import (
    ChaosReport,
    TransportReport,
    run_chaos_experiment,
    run_sim_chaos,
    run_tcp_chaos,
)
from repro.faults.plan import (
    FAULT_PROFILES,
    LINK_FAULT_KINDS,
    RATE_SCALE,
    CrashWindow,
    Decision,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    Partition,
    clean_plan,
    client_link,
    seeded_fault_plan,
    server_link,
)
from repro.faults.simnet import (
    ChaosRunStats,
    FaultyNetwork,
    faulty_system,
    run_chaos,
)
from repro.faults.tcp import FaultProxyCluster

__all__ = [
    "ChaosReport",
    "ChaosRunStats",
    "CrashWindow",
    "Decision",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultPlan",
    "FaultProxyCluster",
    "FaultyNetwork",
    "LINK_FAULT_KINDS",
    "LinkFaults",
    "Partition",
    "RATE_SCALE",
    "TransportReport",
    "clean_plan",
    "client_link",
    "faulty_system",
    "run_chaos",
    "run_chaos_experiment",
    "run_sim_chaos",
    "run_tcp_chaos",
    "seeded_fault_plan",
    "server_link",
]
