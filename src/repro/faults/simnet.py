"""Fault injection for the simulated message network.

:class:`FaultyNetwork` is a drop-in :class:`~repro.msgnet.network.Network`
that routes every client<->server message through a
:class:`~repro.faults.plan.FaultInjector` before it enters the in-flight
multiset:

* **drop** — the message never enters the network;
* **delay** — the message is parked and re-injected ``ticks`` scheduler
  actions later;
* **duplicate** — two copies enter the network (the protocol machines
  deduplicate by sender, so this stresses exactly the at-least-once
  tolerance the TCP client's resends rely on);
* **reorder** — the message is held until the *next* message on the same
  link passes it (or ``ticks`` elapse, whichever is first);
* **partition / crash windows** — while a replica is inside an active
  window every message to or from it is dropped (counted separately from
  the scheduled drops — window drops are traffic-dependent);
* **slowdown** — every message *into* a slow replica is parked for the
  configured ticks (a permanently laggy follower, not a fault event).

The clock is scheduler time: :meth:`~repro.msgnet.abd.MsgABDSystem.run`
reports each action via :meth:`advance`. When the network quiesces with
messages still parked (or windows still pending), :func:`run_chaos`
fast-forwards the clock to the next wakeup and keeps going — and re-emits
blocked operations' unanswered requests
(:meth:`~repro.msgnet.abd.MsgABDSystem.resend_pending`), mirroring the
TCP client's retry loop, until every operation returns or the round
budget is exhausted.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.errors import FaultPlanError, SchedulerExhausted
from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    client_link,
    server_link,
)
from repro.msgnet.abd import MsgABDSystem
from repro.msgnet.network import MsgScheduler, Network


class FaultyNetwork(Network):
    """A :class:`Network` with a seeded fault layer on every send."""

    def __init__(self, injector: FaultInjector) -> None:
        super().__init__()
        self.injector = injector
        self.time = 0
        self._parked: list[tuple[int, int, str, str, Any]] = []
        self._park_counter = 0
        #: One held message per link, waiting to be overtaken.
        self._reorder_hold: dict[str, tuple[str, str, Any]] = {}

    # ------------------------------------------------------------ routing

    def _classify(self, sender: str, recipient: str) -> tuple[str, str] | None:
        """``(link, server)`` for client<->server traffic, else ``None``."""
        replicas = self.injector.plan.replicas
        if recipient in replicas:
            return client_link(recipient), recipient
        if sender in replicas:
            return server_link(sender), sender
        return None

    def send(self, sender: str, recipient: str, payload: Any) -> None:
        classified = self._classify(sender, recipient)
        if classified is None:
            super().send(sender, recipient, payload)
            return
        link, server = classified
        if self.injector.unavailable(server):
            self.injector.count_window_drop(server)
            return
        decision = self.injector.on_send(link)
        # A message passing a link releases any reorder hold behind it.
        held = self._reorder_hold.pop(link, None)
        kind = decision.kind if decision is not None else None
        if kind == "drop":
            pass
        elif kind == "duplicate":
            self._inject(sender, recipient, payload)
            self._inject(sender, recipient, payload)
        elif kind == "delay":
            self._park(self.time + decision.ticks, sender, recipient, payload)
        elif kind == "reorder":
            # Hold this message; the next send on the link (or the tick
            # fallback) releases it behind its successor.
            self._reorder_hold[link] = (sender, recipient, payload)
            self._park(
                self.time + decision.ticks, sender, recipient, payload,
                hold=link,
            )
        else:
            self._inject(sender, recipient, payload)
        if held is not None:
            self._inject(*held)

    def _inject(self, sender: str, recipient: str, payload: Any) -> None:
        """Slowdown-aware entry into the real network."""
        classified = self._classify(sender, recipient)
        if classified is not None:
            _link, server = classified
            if recipient == server:
                slow = self.injector.slowdown_ticks(server)
                if slow > 0:
                    self._park(self.time + slow, sender, recipient, payload,
                               direct=True)
                    return
        super().send(sender, recipient, payload)

    # ------------------------------------------------------------ parking

    def _park(self, release: int, sender: str, recipient: str, payload: Any,
              *, hold: str | None = None, direct: bool = False) -> None:
        self._park_counter += 1
        heapq.heappush(
            self._parked,
            (release, self._park_counter, sender, recipient,
             (payload, hold, direct)),
        )

    def advance(self, tick: int) -> None:
        """Scheduler-clock hook: fire due windows, release due messages."""
        if tick <= self.time and not self._due():
            self.time = max(self.time, tick)
            return
        self.time = max(self.time, tick)
        self.injector.advance_to(self.time)
        while self._due():
            _release, _count, sender, recipient, extra = heapq.heappop(
                self._parked
            )
            payload, hold, direct = extra
            if hold is not None:
                # Tick fallback for a reorder hold: only release if the
                # message is still being held (not overtaken already).
                if self._reorder_hold.get(hold) != (sender, recipient,
                                                    payload):
                    continue
                del self._reorder_hold[hold]
            classified = self._classify(sender, recipient)
            if classified is not None and self.injector.unavailable(
                classified[1]
            ):
                self.injector.count_window_drop(classified[1])
                continue
            if direct:
                super().send(sender, recipient, payload)
            else:
                self._inject(sender, recipient, payload)

    def _due(self) -> bool:
        return bool(self._parked) and self._parked[0][0] <= self.time

    # ------------------------------------------------------- fast-forward

    def next_wakeup(self) -> int | None:
        """The next tick at which something scheduled happens."""
        candidates = []
        if self._parked:
            candidates.append(self._parked[0][0])
        event = self.injector.next_event_tick()
        if event is not None:
            candidates.append(event)
        return min(candidates) if candidates else None

    def idle_advance(self) -> bool:
        """Jump the clock to the next wakeup when the network is idle.

        Returns True when time moved (parked messages released or a
        window opened/healed), False when nothing is scheduled.
        """
        wakeup = self.next_wakeup()
        if wakeup is None:
            return False
        self.advance(max(wakeup, self.time + 1))
        return True


# --------------------------------------------------------------- harness


@dataclass
class ChaosRunStats:
    """What one chaotic simulated run did."""

    steps: int = 0
    resend_rounds: int = 0
    resent_messages: int = 0
    firing_counts: dict = field(default_factory=dict)
    window_drops: int = 0


def faulty_system(
    plan: FaultPlan,
    data_size_bytes: int,
    initial_value: bytes | None = None,
) -> tuple[MsgABDSystem, FaultInjector]:
    """An :class:`MsgABDSystem` on a :class:`FaultyNetwork` for ``plan``.

    The plan's replica names must match the deployment's (``s0..s2f``);
    the system is built with the plan's ``f``.
    """
    expected = tuple(f"s{index}" for index in range(2 * plan.f + 1))
    if tuple(plan.replicas) != expected:
        raise FaultPlanError(
            f"plan replicas {plan.replicas} do not match the deployment "
            f"layout {expected}"
        )
    injector = FaultInjector(plan)
    network = FaultyNetwork(injector)
    system = MsgABDSystem(plan.f, data_size_bytes, initial_value,
                          network=network)
    return system, injector


def run_chaos(
    system: MsgABDSystem,
    scheduler: MsgScheduler | None = None,
    *,
    max_steps: int = 400_000,
    max_rounds: int = 400,
) -> ChaosRunStats:
    """Drive a faulty deployment until every operation returns.

    Alternates three moves until done: run the scheduler to quiescence,
    fast-forward the fault clock to the next scheduled wakeup (releasing
    delayed messages, healing windows), and — only when time cannot move
    — resend every blocked operation's unanswered requests (the sim twin
    of the TCP client's retry timer). Raises
    :class:`~repro.errors.SchedulerExhausted` if the round budget runs
    out, which a well-formed plan (``<= f`` unavailable, windows heal)
    cannot trigger.
    """
    network = system.network
    if not isinstance(network, FaultyNetwork):
        raise FaultPlanError("run_chaos needs a FaultyNetwork-backed system")
    scheduler = scheduler or _default_scheduler()
    stats = ChaosRunStats()
    while True:
        stats.steps += system.run(scheduler, max_steps=max_steps)
        if system.pending_ops == 0:
            break
        if network.idle_advance():
            continue
        emitted = system.resend_pending()
        if emitted == 0:
            raise SchedulerExhausted(
                f"chaos run stuck: {system.pending_ops} operations "
                "pending, nothing parked, nothing to resend"
            )
        stats.resend_rounds += 1
        stats.resent_messages += emitted
        if stats.resend_rounds > max_rounds:
            raise SchedulerExhausted(
                f"chaos run exceeded {max_rounds} resend rounds"
            )
    # Drain the remaining schedule: windows that open only after the last
    # operation returned must still fire, or the sim-vs-TCP parity of
    # event counts would depend on workload length.
    while network.idle_advance():
        stats.steps += system.run(scheduler, max_steps=max_steps)
    stats.firing_counts = network.injector.firing_counts()
    stats.window_drops = network.injector.total_window_drops()
    return stats


def _default_scheduler() -> MsgScheduler:
    from repro.msgnet.network import FairMsgScheduler

    return FairMsgScheduler()


__all__ = [
    "ChaosRunStats",
    "FaultyNetwork",
    "faulty_system",
    "run_chaos",
]
